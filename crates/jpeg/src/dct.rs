//! 8x8 forward and inverse DCT-II used by the JPEG pixel pipeline — the
//! scalar AAN (Arai–Agui–Nakajima) butterfly factorization.
//!
//! The previous implementation multiplied by a precomputed 8x8 basis
//! matrix: O(8³) = 1024 multiplies per 2-D block per direction. The AAN
//! butterfly needs **5 multiplies per 1-D pass** (16 passes = 80 per
//! block) and pushes its remaining per-coefficient scale factors into the
//! quantization step, where the pipeline already multiplies once per
//! coefficient anyway ([`forward_quant_scales`] / [`inverse_quant_scales`]
//! fold them into the tables once per image). The retained basis-matrix
//! implementation lives on as the `#[cfg(test)]` reference oracle the
//! bit-exactness suite decodes against.
//!
//! # Scaling conventions
//!
//! Raw butterfly output is *AAN-scaled*: [`forward_dct_raw`] produces
//! `S(u,v) · 8 · aan(u) · aan(v)` where `S` is the T.81 / orthonormal DCT
//! and `aan(k) = √2·cos(kπ/16)` (`aan(0) = 1`); [`inverse_dct_raw`]
//! expects its input pre-scaled by `aan(u)·aan(v) / 8`. The orthonormal
//! [`forward_dct`] / [`inverse_dct`] wrappers apply those factors
//! explicitly and are what tests and non-pipeline callers use.
//!
//! # Determinism contract
//!
//! All arithmetic is `f64` with hard-coded constants (no `libm` calls at
//! runtime), and every rounding to an integer domain goes through
//! [`descale`], which snaps to a 1/32 grid before rounding half-up.
//! Exact rational DCT outputs (flat blocks and other coefficient patterns
//! whose basis products are rational land on a k/8 grid) therefore round
//! identically no matter which floating-point evaluation order produced
//! them — the property that lets the test suite demand *byte-identical*
//! pixels between this butterfly and the reference basis-matrix oracle.

/// `√2·cos(kπ/16)` for k=1..7 with `aan(0)=1`: the per-index scale factor
/// of the AAN factorization. The 2-D factor for coefficient `(u, v)` is
/// `AAN_SCALE[u] * AAN_SCALE[v]`.
const AAN_SCALE: [f64; 8] = [
    1.0,
    1.3870398453221475,
    1.3065629648763766,
    1.1758756024193588,
    1.0,
    0.7856949583871023,
    0.5411961001461971,
    0.2758993792829431,
];

// Butterfly rotation constants. Hard-coded decimal literals (not
// `std::f64::consts` expressions) so the values are fixed in source and
// platform-independent; clippy's approx-constant lints are quieted where
// a literal coincides with a std constant.
const F_0_382: f64 = 0.3826834323650898; // √2·(c2−c6)/2 … fdct odd rotation
#[allow(clippy::excessive_precision)]
const F_0_541: f64 = 0.5411961001461970;
#[allow(clippy::approx_constant, clippy::excessive_precision)]
const F_0_707: f64 = 0.7071067811865476; // 1/√2
#[allow(clippy::excessive_precision)]
const F_1_306: f64 = 1.3065629648763766;
#[allow(clippy::approx_constant)]
const I_1_414: f64 = 1.4142135623730951; // √2
const I_1_847: f64 = 1.8477590650225735; // 2·cos(π/8)
#[allow(clippy::excessive_precision)]
const I_1_082: f64 = 1.0823922002923940; // √2·(c2−c6)
#[allow(clippy::excessive_precision)]
const I_2_613: f64 = 2.6131259297527530; // √2·(c2+c6)

/// Snap-rounds a DCT-domain value to an integer: the value is first
/// rounded to the nearest 1/32 (ties to even), then to the nearest
/// integer (ties toward +∞). This is the single rounding contract of the
/// pixel pipeline — quantization on encode, pixel reconstruction on
/// decode — shared by the fast butterfly and the reference oracle, so
/// algebraically exact ties (which live on a k/8 grid for conformant
/// streams: flat blocks, coefficients on the rational basis products)
/// cannot round differently across DCT implementations. The 1/32 grid is
/// coarse enough that two different f64 evaluation orders of the same
/// block always land in the same cell, and fine enough to contain every
/// k/8 point.
///
/// Values outside `i32` range after the 32× scale saturate (only
/// reachable from wildly corrupt streams; the subsequent pixel clamp
/// makes the result identical anyway).
#[inline]
pub fn descale(v: f64) -> i32 {
    (round_ne64(v * 32.0).wrapping_add(16)) >> 5
}

/// Branch-free round-to-nearest (ties to even) via the classic
/// 1.5·2^52 magic add — baseline x86-64 has no float rounding
/// instruction, so `f64::round` would be a libm call in the innermost
/// pixel loop. Exact for |x| < 2^51 (far beyond the pixel domain);
/// larger magnitudes produce defined garbage that the pixel clamp
/// swallows.
#[inline]
fn round_ne64(x: f64) -> i32 {
    const MAGIC: f64 = 6_755_399_441_055_744.0; // 1.5 * 2^52
    ((x + MAGIC).to_bits() as i64).wrapping_sub(MAGIC.to_bits() as i64) as i32
}

/// One forward AAN 1-D pass over `x`: 5 multiplies, output AAN-scaled.
#[inline(always)]
// pcr-lint: allow(no-panic-in-hot-path) for-next-item — all indices are literal 0..8 into [f64; 8] rows
fn fdct_1d(x: [f64; 8]) -> [f64; 8] {
    let t0 = x[0] + x[7];
    let t7 = x[0] - x[7];
    let t1 = x[1] + x[6];
    let t6 = x[1] - x[6];
    let t2 = x[2] + x[5];
    let t5 = x[2] - x[5];
    let t3 = x[3] + x[4];
    let t4 = x[3] - x[4];
    // Even part.
    let t10 = t0 + t3;
    let t13 = t0 - t3;
    let t11 = t1 + t2;
    let t12 = t1 - t2;
    let z1 = (t12 + t13) * F_0_707;
    // Odd part.
    let s10 = t4 + t5;
    let s11 = t5 + t6;
    let s12 = t6 + t7;
    let z5 = (s10 - s12) * F_0_382;
    let z2 = F_0_541 * s10 + z5;
    let z4 = F_1_306 * s12 + z5;
    let z3 = s11 * F_0_707;
    let z11 = t7 + z3;
    let z13 = t7 - z3;
    [
        t10 + t11,
        z11 + z4,
        t13 + z1,
        z13 - z2,
        t10 - t11,
        z13 + z2,
        t13 - z1,
        z11 - z4,
    ]
}

/// One inverse AAN 1-D pass over `x` (AAN-prescaled input): 5 multiplies.
#[inline(always)]
// pcr-lint: allow(no-panic-in-hot-path) for-next-item — all indices are literal 0..8 into [f64; 8] rows
fn idct_1d(x: [f64; 8]) -> [f64; 8] {
    // Even part.
    let t10 = x[0] + x[4];
    let t11 = x[0] - x[4];
    let t13 = x[2] + x[6];
    let t12 = (x[2] - x[6]) * I_1_414 - t13;
    let t0 = t10 + t13;
    let t3 = t10 - t13;
    let t1 = t11 + t12;
    let t2 = t11 - t12;
    // Odd part.
    let z13 = x[5] + x[3];
    let z10 = x[5] - x[3];
    let z11 = x[1] + x[7];
    let z12 = x[1] - x[7];
    let t7 = z11 + z13;
    let r11 = (z11 - z13) * I_1_414;
    let z5 = (z10 + z12) * I_1_847;
    let r10 = I_1_082 * z12 - z5;
    let r12 = z5 - I_2_613 * z10;
    let t6 = r12 - t7;
    let t5 = r11 - t6;
    let t4 = r10 + t5;
    [
        t0 + t7,
        t1 + t6,
        t2 + t5,
        t3 - t4,
        t3 + t4,
        t2 - t5,
        t1 - t6,
        t0 - t7,
    ]
}

/// Forward 8x8 DCT, raw AAN scaling: `output[v*8+u]` holds
/// `S(u,v) · 8 · aan(u) · aan(v)`. The pixel pipeline divides the scale
/// back out inside quantization (see [`forward_quant_scales`]); use
/// [`forward_dct`] if you want orthonormal coefficients directly.
// pcr-lint: allow(no-panic-in-hot-path) for-next-item — u/v/i loop in 0..8 indexes fixed [_; 64] blocks as v*8+u
pub fn forward_dct_raw(input: &[f64; 64], output: &mut [f64; 64]) {
    // Rows.
    let mut tmp = [0f64; 64];
    for y in 0..8 {
        let row: [f64; 8] = input[y * 8..y * 8 + 8].try_into().expect("8 wide");
        tmp[y * 8..y * 8 + 8].copy_from_slice(&fdct_1d(row));
    }
    // Columns.
    for u in 0..8 {
        let col = [
            tmp[u],
            tmp[8 + u],
            tmp[16 + u],
            tmp[24 + u],
            tmp[32 + u],
            tmp[40 + u],
            tmp[48 + u],
            tmp[56 + u],
        ];
        let out = fdct_1d(col);
        for (v, o) in out.into_iter().enumerate() {
            output[v * 8 + u] = o;
        }
    }
}

/// Inverse 8x8 DCT, raw AAN scaling: `input[v*8+u]` must hold
/// `S(u,v) · aan(u) · aan(v) / 8` (the dequantization step applies this
/// via [`inverse_quant_scales`]); `output` receives level-shifted spatial
/// samples. Columns whose seven AC inputs are all zero take a constant
/// shortcut — the common case for low-scan-group (DC-heavy) truncated
/// progressive decodes.
// pcr-lint: allow(no-panic-in-hot-path) for-next-item — u/v/i loop in 0..8 indexes fixed [_; 64] blocks as v*8+u
pub fn inverse_dct_raw(input: &[f64; 64], output: &mut [f64; 64]) {
    // Columns.
    let mut ws = [0f64; 64];
    for u in 0..8 {
        let col = [
            input[u],
            input[8 + u],
            input[16 + u],
            input[24 + u],
            input[32 + u],
            input[40 + u],
            input[48 + u],
            input[56 + u],
        ];
        if col[1] == 0.0
            && col[2] == 0.0
            && col[3] == 0.0
            && col[4] == 0.0
            && col[5] == 0.0
            && col[6] == 0.0
            && col[7] == 0.0
        {
            for y in 0..8 {
                ws[y * 8 + u] = col[0];
            }
            continue;
        }
        let out = idct_1d(col);
        for (y, o) in out.into_iter().enumerate() {
            ws[y * 8 + u] = o;
        }
    }
    // Rows.
    for y in 0..8 {
        let row: [f64; 8] = ws[y * 8..y * 8 + 8].try_into().expect("8 wide");
        output[y * 8..y * 8 + 8].copy_from_slice(&idct_1d(row));
    }
}

/// Forward 8x8 DCT with orthonormal output (DC of a constant block `c` is
/// `8c`). `input` holds level-shifted samples in row-major order.
// pcr-lint: allow(no-panic-in-hot-path) for-next-item — u/v/i loop in 0..8 indexes fixed [_; 64] blocks as v*8+u
pub fn forward_dct(input: &[f64; 64], output: &mut [f64; 64]) {
    forward_dct_raw(input, output);
    for v in 0..8 {
        for u in 0..8 {
            output[v * 8 + u] /= 8.0 * AAN_SCALE[u] * AAN_SCALE[v];
        }
    }
}

/// Inverse 8x8 DCT from orthonormal coefficients; `output` receives
/// level-shifted samples.
// pcr-lint: allow(no-panic-in-hot-path) for-next-item — u/v/i loop in 0..8 indexes fixed [_; 64] blocks as v*8+u
pub fn inverse_dct(input: &[f64; 64], output: &mut [f64; 64]) {
    let mut scaled = [0f64; 64];
    for v in 0..8 {
        for u in 0..8 {
            scaled[v * 8 + u] = input[v * 8 + u] * (AAN_SCALE[u] * AAN_SCALE[v] / 8.0);
        }
    }
    inverse_dct_raw(&scaled, output);
}

/// Folds a quantization table (natural order) into per-coefficient
/// *multipliers* for the encode side: `coeff = descale(raw_fdct[i] * m[i])`
/// quantizes raw AAN output in one multiply per coefficient — the
/// division by the table and the AAN descale are both absorbed.
// pcr-lint: allow(no-panic-in-hot-path) for-next-item — u/v/i loop in 0..8 indexes fixed [_; 64] blocks as v*8+u
pub fn forward_quant_scales(q: &[u16; 64]) -> [f64; 64] {
    let mut m = [0f64; 64];
    for (v, sv) in AAN_SCALE.iter().enumerate() {
        for (u, su) in AAN_SCALE.iter().enumerate() {
            let i = v * 8 + u;
            m[i] = 1.0 / (8.0 * su * sv * f64::from(q[i].max(1)));
        }
    }
    m
}

/// Folds a quantization table (natural order) into per-coefficient
/// dequantization multipliers for the decode side:
/// `raw_idct_input[i] = coeff[i] * dq[i]` feeds [`inverse_dct_raw`]
/// directly — dequantization and AAN prescale in one multiply.
// pcr-lint: allow(no-panic-in-hot-path) for-next-item — u/v/i loop in 0..8 indexes fixed [_; 64] blocks as v*8+u
pub fn inverse_quant_scales(q: &[u16; 64]) -> [f64; 64] {
    let mut dq = [0f64; 64];
    for (v, sv) in AAN_SCALE.iter().enumerate() {
        for (u, su) in AAN_SCALE.iter().enumerate() {
            let i = v * 8 + u;
            dq[i] = f64::from(q[i]) * (su * sv / 8.0);
        }
    }
    dq
}

#[inline(always)]
fn vadd(a: [f64; 8], b: [f64; 8]) -> [f64; 8] {
    crate::simd::add8(&a, &b)
}
#[inline(always)]
fn vsub(a: [f64; 8], b: [f64; 8]) -> [f64; 8] {
    crate::simd::sub8(&a, &b)
}
#[inline(always)]
fn vscale(a: [f64; 8], s: f64) -> [f64; 8] {
    crate::simd::scale8(&a, s)
}

/// The decode pixel kernel: dequantizes one block through folded scales
/// ([`inverse_quant_scales`]), inverse transforms it, and stores clamped
/// pixels. The column pass runs the AAN butterfly on whole 8-wide row
/// vectors through the [`crate::simd`] kernels (SSE2 on x86_64, scalar
/// elsewhere — bit-identical either way); the row pass is a scalar
/// butterfly feeding the shared [`descale`] rounding contract.
///
/// Arithmetic is deliberately `f64`: the bit-exactness suite demands
/// byte-identical pixels against the f64 basis-matrix oracle, and only
/// double precision keeps the cross-algorithm discrepancy (~1e-12)
/// far enough from the snap-cell boundaries of the [`descale`] contract
/// that a straddle can never occur in practice (an f32 kernel was
/// measurably faster but produced rare ±1 pixels against the oracle).
#[inline]
// pcr-lint: allow(no-panic-in-hot-path) for-next-item — rows/columns loop over literal 0..8 into [_; 64] blocks; coeffs is length-checked at entry
pub fn inverse_dct_pixels(coeffs: &[i16], dq: &[f64; 64], out: &mut [u8; 64]) {
    debug_assert_eq!(coeffs.len(), 64);
    let mut rows = [[0f64; 8]; 8];
    for v in 0..8 {
        for u in 0..8 {
            rows[v][u] = f64::from(coeffs[v * 8 + u]) * dq[v * 8 + u];
        }
    }
    let [r0, r1, r2, r3, r4, r5, r6, r7] = rows;
    // Column pass, all 8 columns at once (even part).
    let t10 = vadd(r0, r4);
    let t11 = vsub(r0, r4);
    let t13 = vadd(r2, r6);
    let t12 = vsub(vscale(vsub(r2, r6), I_1_414), t13);
    let t0 = vadd(t10, t13);
    let t3 = vsub(t10, t13);
    let t1 = vadd(t11, t12);
    let t2 = vsub(t11, t12);
    // Odd part.
    let z13 = vadd(r5, r3);
    let z10 = vsub(r5, r3);
    let z11 = vadd(r1, r7);
    let z12 = vsub(r1, r7);
    let t7 = vadd(z11, z13);
    let s11 = vscale(vsub(z11, z13), I_1_414);
    let z5 = vscale(vadd(z10, z12), I_1_847);
    let s10 = vsub(vscale(z12, I_1_082), z5);
    let s12 = vsub(z5, vscale(z10, I_2_613));
    let t6 = vsub(s12, t7);
    let t5 = vsub(s11, t6);
    let t4 = vadd(s10, t5);
    let ws = [
        vadd(t0, t7),
        vadd(t1, t6),
        vadd(t2, t5),
        vsub(t3, t4),
        vadd(t3, t4),
        vsub(t2, t5),
        vsub(t1, t6),
        vsub(t0, t7),
    ];
    // Row pass + pixel store.
    for (y, &wrow) in ws.iter().enumerate() {
        let o = idct_1d(wrow);
        for x in 0..8 {
            out[y * 8 + x] = (descale(o[x]) + 128).clamp(0, 255) as u8;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    fn roundtrip_error(block: &[f64; 64]) -> f64 {
        let mut freq = [0f64; 64];
        let mut back = [0f64; 64];
        forward_dct(block, &mut freq);
        inverse_dct(&freq, &mut back);
        block
            .iter()
            .zip(back.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0f64, f64::max)
    }

    #[test]
    fn dct_roundtrip_identity() {
        let mut block = [0f64; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i * 37 + 11) % 256) as f64 - 128.0;
        }
        assert!(roundtrip_error(&block) < 1e-9);
    }

    #[test]
    fn dct_of_constant_block_is_dc_only() {
        let block = [64f64; 64];
        let mut freq = [0f64; 64];
        forward_dct(&block, &mut freq);
        // DC = 8 * value for orthonormal scaling.
        assert!((freq[0] - 8.0 * 64.0).abs() < 1e-9);
        for &v in &freq[1..] {
            assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    fn dct_is_linear() {
        let mut a = [0f64; 64];
        let mut b = [0f64; 64];
        for i in 0..64 {
            a[i] = (i as f64) - 32.0;
            b[i] = ((i * 7) % 64) as f64;
        }
        let mut fa = [0f64; 64];
        let mut fb = [0f64; 64];
        let mut fsum = [0f64; 64];
        forward_dct(&a, &mut fa);
        forward_dct(&b, &mut fb);
        let mut sum = [0f64; 64];
        for i in 0..64 {
            sum[i] = a[i] + b[i];
        }
        forward_dct(&sum, &mut fsum);
        for i in 0..64 {
            assert!((fsum[i] - fa[i] - fb[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let mut block = [0f64; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = (((i * 131 + 17) % 255) as f64) - 127.0;
        }
        let mut freq = [0f64; 64];
        forward_dct(&block, &mut freq);
        let e_spatial: f64 = block.iter().map(|v| v * v).sum();
        let e_freq: f64 = freq.iter().map(|v| v * v).sum();
        assert!((e_spatial - e_freq).abs() / e_spatial < 1e-12);
    }

    /// The butterfly agrees with the retained basis-matrix oracle to
    /// near-f64 precision in both directions (pseudo-random blocks).
    #[test]
    fn butterfly_matches_reference_oracle() {
        let mut seed = 0x1357_9BDFu64;
        for _ in 0..64 {
            let mut block = [0f64; 64];
            for v in block.iter_mut() {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                *v = ((seed >> 33) as i64 % 512 - 256) as f64 / 2.0;
            }
            let mut fast_f = [0f64; 64];
            let mut ref_f = [0f64; 64];
            forward_dct(&block, &mut fast_f);
            reference::reference_forward_dct(&block, &mut ref_f);
            for i in 0..64 {
                assert!((fast_f[i] - ref_f[i]).abs() < 1e-8, "fdct[{i}]");
            }
            let mut fast_i = [0f64; 64];
            let mut ref_i = [0f64; 64];
            inverse_dct(&ref_f, &mut fast_i);
            reference::reference_inverse_dct(&ref_f, &mut ref_i);
            for i in 0..64 {
                assert!((fast_i[i] - ref_i[i]).abs() < 1e-8, "idct[{i}]");
            }
        }
    }

    #[test]
    fn descale_rounds_half_up_on_snapped_grid() {
        assert_eq!(descale(1.5), 2);
        assert_eq!(descale(1.4999999999), 2); // snaps to 1.5, then half-up
        assert_eq!(descale(1.5000000001), 2);
        assert_eq!(descale(2.5), 3);
        assert_eq!(descale(-0.5), 0); // half-up, not away-from-zero
        assert_eq!(descale(-1.5), -1);
        assert_eq!(descale(-1.7), -2);
        assert_eq!(descale(0.484), 0); // below the snapped half grid point
        assert_eq!(descale(127.125), 127);
        assert_eq!(descale(0.0), 0);
        // Rational tie-grid values (k/8) round deterministically.
        for k in -4096i32..4096 {
            let v = f64::from(k) / 8.0;
            let expected = (4 * k + 16).div_euclid(32); // exact half-up of k/8
            assert_eq!(descale(v), expected, "at {v}");
        }
    }

    #[test]
    fn pixel_kernel_matches_orthonormal_path() {
        // inverse_dct_pixels (q-folded kernel) == inverse_dct(coeff * q)
        // + descale, exactly at the rounding contract.
        let mut q = [0u16; 64];
        for (i, v) in q.iter_mut().enumerate() {
            *v = (3 + (i * 7) % 91) as u16;
        }
        let mut coeffs = [0i16; 64];
        for (i, v) in coeffs.iter_mut().enumerate() {
            *v = ((i as i32 * 29 + 5) % 41 - 20) as i16;
        }
        let dq = inverse_quant_scales(&q);
        let mut fast = [0u8; 64];
        inverse_dct_pixels(&coeffs, &dq, &mut fast);
        let mut ortho_in = [0f64; 64];
        for i in 0..64 {
            ortho_in[i] = f64::from(coeffs[i]) * f64::from(q[i]);
        }
        let mut ortho = [0f64; 64];
        inverse_dct(&ortho_in, &mut ortho);
        for i in 0..64 {
            let expected = (descale(ortho[i]) + 128).clamp(0, 255) as u8;
            assert_eq!(fast[i], expected, "pixel {i}");
        }
    }
}
