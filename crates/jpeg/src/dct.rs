//! 8x8 forward and inverse DCT-II used by the JPEG pixel pipeline.
//!
//! A separable floating-point implementation with a precomputed basis
//! matrix. It is exactly orthonormal up to f32 rounding, which keeps the
//! encoder/decoder round trip well-conditioned; speed is adequate for the
//! benchmark workloads in this repository.

/// `BASIS[u][x] = c(u) * cos((2x+1) u pi / 16) / 2`, the orthonormal 1-D
/// DCT-II basis used in both directions.
fn basis() -> &'static [[f32; 8]; 8] {
    use std::sync::OnceLock;
    static BASIS: OnceLock<[[f32; 8]; 8]> = OnceLock::new();
    BASIS.get_or_init(|| {
        let mut b = [[0f32; 8]; 8];
        for (u, row) in b.iter_mut().enumerate() {
            let cu = if u == 0 { (0.5f64).sqrt() } else { 1.0 };
            for (x, v) in row.iter_mut().enumerate() {
                *v = (0.5
                    * cu
                    * ((2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0).cos())
                    as f32;
            }
        }
        b
    })
}

/// Forward 8x8 DCT. `input` holds level-shifted samples (pixel - 128) in
/// row-major order; `output` receives coefficients in row-major (natural)
/// order, with DC at index 0.
pub fn forward_dct(input: &[f32; 64], output: &mut [f32; 64]) {
    let b = basis();
    // Rows: tmp[y][u] = sum_x input[y][x] * b[u][x]
    let mut tmp = [0f32; 64];
    for y in 0..8 {
        for u in 0..8 {
            let mut s = 0f32;
            for x in 0..8 {
                s += input[y * 8 + x] * b[u][x];
            }
            tmp[y * 8 + u] = s;
        }
    }
    // Columns: out[v][u] = sum_y tmp[y][u] * b[v][y]
    for v in 0..8 {
        for u in 0..8 {
            let mut s = 0f32;
            for y in 0..8 {
                s += tmp[y * 8 + u] * b[v][y];
            }
            output[v * 8 + u] = s;
        }
    }
}

/// Inverse 8x8 DCT. `input` holds coefficients in row-major (natural) order;
/// `output` receives level-shifted samples.
pub fn inverse_dct(input: &[f32; 64], output: &mut [f32; 64]) {
    let b = basis();
    // Columns first: tmp[y][u] = sum_v input[v][u] * b[v][y]
    let mut tmp = [0f32; 64];
    for u in 0..8 {
        for y in 0..8 {
            let mut s = 0f32;
            for v in 0..8 {
                s += input[v * 8 + u] * b[v][y];
            }
            tmp[y * 8 + u] = s;
        }
    }
    // Rows: out[y][x] = sum_u tmp[y][u] * b[u][x]
    for y in 0..8 {
        for x in 0..8 {
            let mut s = 0f32;
            for u in 0..8 {
                s += tmp[y * 8 + u] * b[u][x];
            }
            output[y * 8 + x] = s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_error(block: &[f32; 64]) -> f32 {
        let mut freq = [0f32; 64];
        let mut back = [0f32; 64];
        forward_dct(block, &mut freq);
        inverse_dct(&freq, &mut back);
        block
            .iter()
            .zip(back.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0f32, f32::max)
    }

    #[test]
    fn dct_roundtrip_identity() {
        let mut block = [0f32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i * 37 + 11) % 256) as f32 - 128.0;
        }
        assert!(roundtrip_error(&block) < 1e-3);
    }

    #[test]
    fn dct_of_constant_block_is_dc_only() {
        let block = [64f32; 64];
        let mut freq = [0f32; 64];
        forward_dct(&block, &mut freq);
        // DC = 8 * value for orthonormal scaling.
        assert!((freq[0] - 8.0 * 64.0).abs() < 1e-2);
        for &v in &freq[1..] {
            assert!(v.abs() < 1e-3);
        }
    }

    #[test]
    fn dct_is_linear() {
        let mut a = [0f32; 64];
        let mut b = [0f32; 64];
        for i in 0..64 {
            a[i] = (i as f32) - 32.0;
            b[i] = ((i * 7) % 64) as f32;
        }
        let mut fa = [0f32; 64];
        let mut fb = [0f32; 64];
        let mut fsum = [0f32; 64];
        forward_dct(&a, &mut fa);
        forward_dct(&b, &mut fb);
        let mut sum = [0f32; 64];
        for i in 0..64 {
            sum[i] = a[i] + b[i];
        }
        forward_dct(&sum, &mut fsum);
        for i in 0..64 {
            assert!((fsum[i] - fa[i] - fb[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let mut block = [0f32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = (((i * 131 + 17) % 255) as f32) - 127.0;
        }
        let mut freq = [0f32; 64];
        forward_dct(&block, &mut freq);
        let e_spatial: f32 = block.iter().map(|v| v * v).sum();
        let e_freq: f32 = freq.iter().map(|v| v * v).sum();
        assert!((e_spatial - e_freq).abs() / e_spatial < 1e-4);
    }
}
