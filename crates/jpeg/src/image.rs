//! Pixel buffers and RGB <-> YCbCr color conversion (BT.601 full range, as
//! used by JFIF).

use crate::error::{Error, Result};

/// An 8-bit image with 1 (grayscale) or 3 (RGB, interleaved) channels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageBuf {
    width: u32,
    height: u32,
    channels: u8,
    data: Vec<u8>,
}

impl ImageBuf {
    /// Creates an image from raw interleaved samples.
    ///
    /// `data.len()` must equal `width * height * channels`.
    pub fn from_raw(width: u32, height: u32, channels: u8, data: Vec<u8>) -> Result<Self> {
        if width == 0 || height == 0 || width > 1 << 16 || height > 1 << 16 {
            return Err(Error::BadDimensions { width, height });
        }
        if channels != 1 && channels != 3 {
            return Err(Error::BadInput(format!("unsupported channel count {channels}")));
        }
        let expected = width as usize * height as usize * channels as usize;
        if data.len() != expected {
            return Err(Error::BadInput(format!(
                "expected {expected} samples, got {}",
                data.len()
            )));
        }
        Ok(Self { width, height, channels, data })
    }

    /// Creates a black image.
    pub fn new(width: u32, height: u32, channels: u8) -> Result<Self> {
        let n = width as usize * height as usize * channels as usize;
        Self::from_raw(width, height, channels, vec![0; n])
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of interleaved channels (1 or 3).
    pub fn channels(&self) -> u8 {
        self.channels
    }

    /// Raw interleaved samples.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw samples.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Sample at (x, y, c).
    #[inline]
    pub fn get(&self, x: u32, y: u32, c: u8) -> u8 {
        self.data[(y as usize * self.width as usize + x as usize) * self.channels as usize
            + c as usize]
    }

    /// Sets sample at (x, y, c).
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, c: u8, v: u8) {
        self.data[(y as usize * self.width as usize + x as usize) * self.channels as usize
            + c as usize] = v;
    }

    /// Converts to a single-channel luma image (identity for grayscale).
    pub fn to_luma(&self) -> ImageBuf {
        if self.channels == 1 {
            return self.clone();
        }
        let mut out = Vec::with_capacity(self.width as usize * self.height as usize);
        for px in self.data.chunks_exact(3) {
            out.push(rgb_to_ycbcr(px[0], px[1], px[2]).0);
        }
        ImageBuf { width: self.width, height: self.height, channels: 1, data: out }
    }

    /// Center-crops to `(cw, ch)`; clamps to the image size.
    pub fn center_crop(&self, cw: u32, ch: u32) -> ImageBuf {
        let cw = cw.min(self.width);
        let ch = ch.min(self.height);
        let x0 = (self.width - cw) / 2;
        let y0 = (self.height - ch) / 2;
        let c = self.channels as usize;
        let mut data = Vec::with_capacity(cw as usize * ch as usize * c);
        for y in 0..ch {
            let row = ((y0 + y) as usize * self.width as usize + x0 as usize) * c;
            data.extend_from_slice(&self.data[row..row + cw as usize * c]);
        }
        ImageBuf { width: cw, height: ch, channels: self.channels, data }
    }

    /// Nearest-neighbour resize (sufficient for augmentation simulation).
    pub fn resize(&self, nw: u32, nh: u32) -> ImageBuf {
        let c = self.channels as usize;
        let mut data = Vec::with_capacity(nw as usize * nh as usize * c);
        for y in 0..nh {
            let sy = (y as u64 * self.height as u64 / nh as u64) as u32;
            for x in 0..nw {
                let sx = (x as u64 * self.width as u64 / nw as u64) as u32;
                let off = (sy as usize * self.width as usize + sx as usize) * c;
                data.extend_from_slice(&self.data[off..off + c]);
            }
        }
        ImageBuf { width: nw, height: nh, channels: self.channels, data }
    }

    /// Horizontal flip (a standard training augmentation).
    pub fn hflip(&self) -> ImageBuf {
        let c = self.channels as usize;
        let w = self.width as usize;
        let mut data = vec![0u8; self.data.len()];
        for y in 0..self.height as usize {
            for x in 0..w {
                let src = (y * w + x) * c;
                let dst = (y * w + (w - 1 - x)) * c;
                data[dst..dst + c].copy_from_slice(&self.data[src..src + c]);
            }
        }
        ImageBuf { width: self.width, height: self.height, channels: self.channels, data }
    }
}

/// Rounds a 16.16 fixed-point value to u8 with clamping (ties toward +∞).
#[inline]
fn fix_to_u8(v: i32) -> u8 {
    ((v + (1 << 15)) >> 16).clamp(0, 255) as u8
}

/// RGB -> YCbCr (JFIF / BT.601 full range), rounded to u8.
///
/// 16.16 fixed-point: exact integer arithmetic (deterministic across
/// platforms, no float rounding in the per-pixel loop). Coefficient
/// triples sum to exactly `1 << 16`, so neutral gray maps to itself and
/// `Cb`/`Cr` of gray are exactly 128.
#[inline]
pub fn rgb_to_ycbcr(r: u8, g: u8, b: u8) -> (u8, u8, u8) {
    let (r, g, b) = (i32::from(r), i32::from(g), i32::from(b));
    let y = 19_595 * r + 38_470 * g + 7_471 * b; // 0.299, 0.587, 0.114
    let cb = -11_059 * r - 21_709 * g + 32_768 * b; // -0.168736, -0.331264, 0.5
    let cr = 32_768 * r - 27_439 * g - 5_329 * b; // 0.5, -0.418688, -0.081312
    (
        fix_to_u8(y),
        fix_to_u8(cb + (128 << 16)),
        fix_to_u8(cr + (128 << 16)),
    )
}

/// Per-Cr red offset: `round(1.402 · (cr − 128))` in 16.16 fixed point.
/// `(y·2¹⁶ + t + 2¹⁵) >> 16 == y + ((t + 2¹⁵) >> 16)` exactly, so folding
/// the rounding into the table preserves the fixed-point result bit for
/// bit while turning the per-pixel work into one add.
static R_CR: [i32; 256] = build_rounded_lut(91_881); // 1.402
/// Per-Cb blue offset: `round(1.772 · (cb − 128))`.
static B_CB: [i32; 256] = build_rounded_lut(116_130); // 1.772
/// Raw green contributions (summed, then rounded once).
static G_CB: [i32; 256] = build_raw_lut(-22_554); // -0.344136
/// Raw green Cr contribution.
static G_CR: [i32; 256] = build_raw_lut(-46_802); // -0.714136

const fn build_rounded_lut(mul: i32) -> [i32; 256] {
    let mut t = [0i32; 256];
    let mut i = 0;
    while i < 256 {
        t[i] = (mul * (i as i32 - 128) + (1 << 15)) >> 16;
        i += 1;
    }
    t
}

const fn build_raw_lut(mul: i32) -> [i32; 256] {
    let mut t = [0i32; 256];
    let mut i = 0;
    while i < 256 {
        t[i] = mul * (i as i32 - 128);
        i += 1;
    }
    t
}

/// YCbCr -> RGB (JFIF / BT.601 full range), rounded to u8.
///
/// The decode pixel hot path's final step: precomputed 16.16 fixed-point
/// offset tables reduce each channel to table loads, adds, and a clamp —
/// bit-identical to evaluating the fixed-point multiplies per pixel.
#[inline]
pub fn ycbcr_to_rgb(y: u8, cb: u8, cr: u8) -> (u8, u8, u8) {
    let y = i32::from(y);
    let r = y + R_CR[cr as usize];
    let g = y + ((G_CB[cb as usize] + G_CR[cr as usize] + (1 << 15)) >> 16);
    let b = y + B_CB[cb as usize];
    (
        r.clamp(0, 255) as u8,
        g.clamp(0, 255) as u8,
        b.clamp(0, 255) as u8,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn color_roundtrip_is_close() {
        for r in (0..=255).step_by(17) {
            for g in (0..=255).step_by(23) {
                for b in (0..=255).step_by(29) {
                    let (y, cb, cr) = rgb_to_ycbcr(r, g, b);
                    let (r2, g2, b2) = ycbcr_to_rgb(y, cb, cr);
                    assert!((i16::from(r) - i16::from(r2)).abs() <= 2);
                    assert!((i16::from(g) - i16::from(g2)).abs() <= 2);
                    assert!((i16::from(b) - i16::from(b2)).abs() <= 2);
                }
            }
        }
    }

    #[test]
    fn grayscale_maps_to_y() {
        for v in [0u8, 17, 128, 200, 255] {
            let (y, cb, cr) = rgb_to_ycbcr(v, v, v);
            assert_eq!(y, v);
            assert_eq!(cb, 128);
            assert_eq!(cr, 128);
        }
    }

    #[test]
    fn from_raw_validates_length() {
        assert!(ImageBuf::from_raw(4, 4, 3, vec![0; 48]).is_ok());
        assert!(ImageBuf::from_raw(4, 4, 3, vec![0; 47]).is_err());
        assert!(ImageBuf::from_raw(0, 4, 3, vec![]).is_err());
        assert!(ImageBuf::from_raw(4, 4, 2, vec![0; 32]).is_err());
    }

    #[test]
    fn center_crop_geometry() {
        let mut img = ImageBuf::new(8, 8, 1).unwrap();
        img.set(3, 3, 0, 77);
        let c = img.center_crop(4, 4);
        assert_eq!(c.width(), 4);
        assert_eq!(c.height(), 4);
        assert_eq!(c.get(1, 1, 0), 77); // (3,3) - offset (2,2)
    }

    #[test]
    fn hflip_involution() {
        let data: Vec<u8> = (0..48).collect();
        let img = ImageBuf::from_raw(4, 4, 3, data).unwrap();
        assert_eq!(img.hflip().hflip(), img);
        assert_eq!(img.hflip().get(0, 0, 0), img.get(3, 0, 0));
    }

    #[test]
    fn resize_preserves_corners_roughly() {
        let mut img = ImageBuf::new(8, 8, 1).unwrap();
        img.set(0, 0, 0, 10);
        let r = img.resize(4, 4);
        assert_eq!(r.get(0, 0, 0), 10);
        assert_eq!(r.width(), 4);
    }

    #[test]
    fn to_luma_of_gray_is_identity() {
        let img = ImageBuf::from_raw(2, 2, 1, vec![1, 2, 3, 4]).unwrap();
        assert_eq!(img.to_luma(), img);
    }
}
