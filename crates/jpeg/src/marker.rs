//! Marker-segment level reading and writing (everything outside the
//! entropy-coded data).

use crate::consts::*;
use crate::error::{Error, Result};
use crate::frame::{FrameInfo, ScanComponent, ScanInfo};
use crate::huffman::HuffTable;

/// Writes `FF marker len payload` with the length field covering itself.
pub fn write_segment(out: &mut Vec<u8>, marker: u8, payload: &[u8]) {
    out.push(0xFF);
    out.push(marker);
    let len = payload.len() + 2;
    assert!(len <= 0xFFFF, "segment too long");
    out.extend_from_slice(&(len as u16).to_be_bytes());
    out.extend_from_slice(payload);
}

/// Writes the JFIF APP0 segment.
pub fn write_jfif(out: &mut Vec<u8>) {
    let payload = [b'J', b'F', b'I', b'F', 0, 1, 1, 0, 0, 1, 0, 1, 0, 0];
    write_segment(out, APP0, &payload);
}

/// Writes one DQT segment containing a single 8-bit table.
pub fn write_dqt(out: &mut Vec<u8>, table_id: u8, qtable_natural: &[u16; 64]) {
    let mut payload = Vec::with_capacity(65);
    payload.push(table_id & 0x0F); // Pq=0 (8-bit), Tq
    for i in 0..64 {
        payload.push(qtable_natural[ZIGZAG[i]] as u8);
    }
    write_segment(out, DQT, &payload);
}

/// Writes a DHT segment for a single table. `class` is 0 (DC) or 1 (AC).
pub fn write_dht(out: &mut Vec<u8>, class: u8, table_id: u8, table: &HuffTable) {
    let mut payload = Vec::with_capacity(17 + table.vals.len());
    payload.push((class << 4) | (table_id & 0x0F));
    payload.extend_from_slice(&table.bits);
    payload.extend_from_slice(&table.vals);
    write_segment(out, DHT, &payload);
}

/// Writes a DRI (define restart interval) segment. `interval` is in MCU
/// units; 0 disables restarts for subsequent scans.
pub fn write_dri(out: &mut Vec<u8>, interval: u16) {
    write_segment(out, DRI, &interval.to_be_bytes());
}

/// Writes the SOF0/SOF2 frame header.
pub fn write_sof(out: &mut Vec<u8>, frame: &FrameInfo) {
    let marker = if frame.progressive { SOF2 } else { SOF0 };
    let mut payload = Vec::with_capacity(8 + frame.components.len() * 3);
    payload.push(8); // precision
    payload.extend_from_slice(&(frame.height as u16).to_be_bytes());
    payload.extend_from_slice(&(frame.width as u16).to_be_bytes());
    payload.push(frame.components.len() as u8);
    for c in &frame.components {
        payload.push(c.id);
        payload.push((c.h << 4) | c.v);
        payload.push(c.tq);
    }
    write_segment(out, marker, &payload);
}

/// Writes an SOS header (not the entropy data).
pub fn write_sos(out: &mut Vec<u8>, frame: &FrameInfo, scan: &ScanInfo) {
    let mut payload = Vec::with_capacity(4 + scan.components.len() * 2);
    payload.push(scan.components.len() as u8);
    for sc in &scan.components {
        payload.push(frame.components[sc.comp_index].id);
        payload.push((sc.dc_table << 4) | sc.ac_table);
    }
    payload.push(scan.ss);
    payload.push(scan.se);
    payload.push((scan.ah << 4) | scan.al);
    write_segment(out, SOS, &payload);
}

/// A segment yielded by [`SegmentReader`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment<'a> {
    /// Start of image.
    Soi,
    /// End of image.
    Eoi,
    /// A marker with payload (length bytes stripped).
    Marker {
        /// The marker byte (second byte of FFxx).
        marker: u8,
        /// Segment payload without the two length bytes.
        payload: &'a [u8],
    },
    /// SOS header payload followed by the offset where entropy data starts.
    Sos {
        /// SOS payload (without length bytes).
        payload: &'a [u8],
        /// Offset of the first entropy-coded byte in the input.
        entropy_start: usize,
    },
}

/// Streaming reader over marker segments. Entropy data after an SOS must be
/// skipped by the caller via [`SegmentReader::skip_entropy`].
#[derive(Debug)]
pub struct SegmentReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SegmentReader<'a> {
    /// Creates a reader positioned at the start of the stream.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Reads the next segment.
    pub fn next_segment(&mut self) -> Result<Segment<'a>> {
        // Tolerate fill bytes (repeated 0xFF) before a marker.
        loop {
            let b = *self.data.get(self.pos).ok_or(Error::UnexpectedEof)?;
            if b != 0xFF {
                return Err(Error::CorruptData(format!(
                    "expected marker at offset {}, found {b:#04x}",
                    self.pos
                )));
            }
            let mut p = self.pos + 1;
            while self.data.get(p) == Some(&0xFF) {
                p += 1;
            }
            let m = *self.data.get(p).ok_or(Error::UnexpectedEof)?;
            self.pos = p + 1;
            match m {
                0x00 => {
                    return Err(Error::CorruptData("stuffed byte outside entropy data".into()))
                }
                SOI => return Ok(Segment::Soi),
                EOI => return Ok(Segment::Eoi),
                m if is_rst(m) => continue, // stray RST: skip
                SOS => {
                    let (payload, end) = self.read_length_payload(m)?;
                    self.pos = end;
                    return Ok(Segment::Sos { payload, entropy_start: end });
                }
                _ => {
                    let (payload, end) = self.read_length_payload(m)?;
                    self.pos = end;
                    return Ok(Segment::Marker { marker: m, payload });
                }
            }
        }
    }

    fn read_length_payload(&self, marker: u8) -> Result<(&'a [u8], usize)> {
        let at = self.pos;
        if at + 2 > self.data.len() {
            return Err(Error::UnexpectedEof);
        }
        let len = u16::from_be_bytes([self.data[at], self.data[at + 1]]) as usize;
        if len < 2 || at + len > self.data.len() {
            return Err(Error::BadSegmentLength { marker });
        }
        Ok((&self.data[at + 2..at + len], at + len))
    }

    /// Advances past entropy-coded data to the next real marker, returning
    /// the entropy byte range. Uses the word-at-a-time 0xFF scanner shared
    /// with the entropy bit-reader ([`crate::bitio::find_ff`]), so scan
    /// splitting walks stuffing-free runs at memory speed.
    pub fn skip_entropy(&mut self) -> (usize, usize) {
        let start = self.pos;
        let mut p = self.pos;
        loop {
            p = crate::bitio::find_ff(self.data, p);
            if p + 1 >= self.data.len() {
                self.pos = self.data.len();
                return (start, self.data.len());
            }
            let m = self.data[p + 1];
            if m != 0x00 && !is_rst(m) {
                self.pos = p;
                return (start, p);
            }
            p += 2; // stuffed 0xFF 0x00 or restart marker: still entropy data
        }
    }
}

/// Parses a DQT payload, which may hold multiple tables. Returns
/// `(table_id, natural-order table)` pairs.
pub fn parse_dqt(payload: &[u8]) -> Result<Vec<(u8, [u16; 64])>> {
    let mut out = Vec::new();
    let mut p = 0usize;
    while p < payload.len() {
        let pq_tq = payload[p];
        let pq = pq_tq >> 4;
        let tq = pq_tq & 0x0F;
        p += 1;
        if tq > 3 {
            return Err(Error::BadQuant(format!("table id {tq}")));
        }
        let mut table = [0u16; 64];
        match pq {
            0 => {
                if p + 64 > payload.len() {
                    return Err(Error::BadQuant("short 8-bit table".into()));
                }
                for i in 0..64 {
                    table[ZIGZAG[i]] = u16::from(payload[p + i]);
                }
                p += 64;
            }
            1 => {
                if p + 128 > payload.len() {
                    return Err(Error::BadQuant("short 16-bit table".into()));
                }
                for i in 0..64 {
                    table[ZIGZAG[i]] =
                        u16::from_be_bytes([payload[p + 2 * i], payload[p + 2 * i + 1]]);
                }
                p += 128;
            }
            _ => return Err(Error::BadQuant(format!("precision {pq}"))),
        }
        if table.contains(&0) {
            return Err(Error::BadQuant("zero quantizer".into()));
        }
        out.push((tq, table));
    }
    Ok(out)
}

/// Parses a DHT payload into `(class, table_id, table)` triples.
pub fn parse_dht(payload: &[u8]) -> Result<Vec<(u8, u8, HuffTable)>> {
    let mut out = Vec::new();
    let mut p = 0usize;
    while p < payload.len() {
        if p + 17 > payload.len() {
            return Err(Error::BadHuffman("short DHT".into()));
        }
        let tc_th = payload[p];
        let class = tc_th >> 4;
        let id = tc_th & 0x0F;
        if class > 1 || id > 3 {
            return Err(Error::BadHuffman(format!("class {class} id {id}")));
        }
        let mut bits = [0u8; 16];
        bits.copy_from_slice(&payload[p + 1..p + 17]);
        let total: usize = bits.iter().map(|&b| b as usize).sum();
        p += 17;
        if p + total > payload.len() {
            return Err(Error::BadHuffman("short DHT values".into()));
        }
        let vals = payload[p..p + total].to_vec();
        p += total;
        out.push((class, id, HuffTable::new(bits, vals)?));
    }
    Ok(out)
}

/// Parses an SOF payload into a [`FrameInfo`].
pub fn parse_sof(payload: &[u8], progressive: bool) -> Result<FrameInfo> {
    if payload.len() < 6 {
        return Err(Error::UnsupportedFrame("short SOF".into()));
    }
    let precision = payload[0];
    if precision != 8 {
        return Err(Error::UnsupportedFrame(format!("precision {precision}")));
    }
    let height = u32::from(u16::from_be_bytes([payload[1], payload[2]]));
    let width = u32::from(u16::from_be_bytes([payload[3], payload[4]]));
    let n = payload[5] as usize;
    if payload.len() != 6 + n * 3 {
        return Err(Error::UnsupportedFrame("SOF length mismatch".into()));
    }
    let mut comps = Vec::with_capacity(n);
    for i in 0..n {
        let id = payload[6 + i * 3];
        let hv = payload[7 + i * 3];
        let tq = payload[8 + i * 3];
        comps.push((id, hv >> 4, hv & 0x0F, tq));
    }
    FrameInfo::from_components(width, height, progressive, comps)
}

/// Parses an SOS payload against a frame into a [`ScanInfo`].
pub fn parse_sos(payload: &[u8], frame: &FrameInfo) -> Result<ScanInfo> {
    if payload.is_empty() {
        return Err(Error::BadScan("empty SOS".into()));
    }
    let n = payload[0] as usize;
    if payload.len() != 1 + n * 2 + 3 {
        return Err(Error::BadScan("SOS length mismatch".into()));
    }
    let mut components = Vec::with_capacity(n);
    for i in 0..n {
        let cid = payload[1 + i * 2];
        let tables = payload[2 + i * 2];
        let comp_index = frame
            .components
            .iter()
            .position(|c| c.id == cid)
            .ok_or_else(|| Error::BadScan(format!("unknown component id {cid}")))?;
        components.push(ScanComponent {
            comp_index,
            dc_table: tables >> 4,
            ac_table: tables & 0x0F,
        });
    }
    let ss = payload[1 + n * 2];
    let se = payload[2 + n * 2];
    let a = payload[3 + n * 2];
    let scan = ScanInfo { components, ss, se, ah: a >> 4, al: a & 0x0F };
    scan.validate(frame)?;
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Subsampling;

    #[test]
    fn segment_roundtrip() {
        let mut buf = vec![0xFF, SOI];
        write_segment(&mut buf, COM, b"hello");
        buf.extend_from_slice(&[0xFF, EOI]);
        let mut r = SegmentReader::new(&buf);
        assert_eq!(r.next_segment().unwrap(), Segment::Soi);
        match r.next_segment().unwrap() {
            Segment::Marker { marker, payload } => {
                assert_eq!(marker, COM);
                assert_eq!(payload, b"hello");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(r.next_segment().unwrap(), Segment::Eoi);
    }

    #[test]
    fn dqt_roundtrip() {
        let table = crate::consts::scale_qtable(&STD_LUMA_QTABLE, 85);
        let mut buf = Vec::new();
        write_dqt(&mut buf, 1, &table);
        let mut r = SegmentReader::new(&buf);
        let seg = r.next_segment().unwrap();
        let Segment::Marker { marker, payload } = seg else { panic!() };
        assert_eq!(marker, DQT);
        let parsed = parse_dqt(payload).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, 1);
        assert_eq!(parsed[0].1, table);
    }

    #[test]
    fn dht_roundtrip() {
        let t = HuffTable::std_ac_chroma();
        let mut buf = Vec::new();
        write_dht(&mut buf, 1, 1, &t);
        let mut r = SegmentReader::new(&buf);
        let Segment::Marker { payload, .. } = r.next_segment().unwrap() else { panic!() };
        let parsed = parse_dht(payload).unwrap();
        assert_eq!(parsed, vec![(1u8, 1u8, t)]);
    }

    #[test]
    fn sof_roundtrip() {
        let f = FrameInfo::for_encode(640, 480, 3, Subsampling::S420, true).unwrap();
        let mut buf = Vec::new();
        write_sof(&mut buf, &f);
        let mut r = SegmentReader::new(&buf);
        let Segment::Marker { marker, payload } = r.next_segment().unwrap() else { panic!() };
        assert_eq!(marker, SOF2);
        let parsed = parse_sof(payload, true).unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn sos_roundtrip() {
        let f = FrameInfo::for_encode(64, 64, 3, Subsampling::S420, true).unwrap();
        let scan = ScanInfo {
            components: vec![ScanComponent { comp_index: 1, dc_table: 0, ac_table: 1 }],
            ss: 1,
            se: 63,
            ah: 0,
            al: 1,
        };
        let mut buf = Vec::new();
        write_sos(&mut buf, &f, &scan);
        let mut r = SegmentReader::new(&buf);
        let Segment::Sos { payload, .. } = r.next_segment().unwrap() else { panic!() };
        let parsed = parse_sos(payload, &f).unwrap();
        assert_eq!(parsed, scan);
    }

    #[test]
    fn skip_entropy_stops_at_marker_not_stuffing() {
        let data = [0x12, 0x34, 0xFF, 0x00, 0x56, 0xFF, 0xD9];
        let mut r = SegmentReader::new(&data);
        let (s, e) = r.skip_entropy();
        assert_eq!((s, e), (0, 5));
        assert_eq!(r.next_segment().unwrap(), Segment::Eoi);
    }

    #[test]
    fn rejects_truncated_segment() {
        let buf = vec![0xFF, COM, 0x00, 0x10, b'x'];
        let mut r = SegmentReader::new(&buf);
        assert!(matches!(r.next_segment(), Err(Error::BadSegmentLength { .. })));
    }

    #[test]
    fn tolerates_fill_bytes() {
        let buf = vec![0xFF, 0xFF, 0xFF, SOI];
        let mut r = SegmentReader::new(&buf);
        assert_eq!(r.next_segment().unwrap(), Segment::Soi);
    }
}
