//! # pcr-jpeg
//!
//! A from-scratch, pure-Rust JPEG codec built as the substrate for
//! Progressive Compressed Records (Kuchnik et al., VLDB 2021).
//!
//! Supported: 8-bit baseline (SOF0) and progressive (SOF2) Huffman coding,
//! grayscale and YCbCr with 4:4:4 / 4:2:0 subsampling, per-scan optimized
//! Huffman tables, the libjpeg default 10-scan progressive script, lossless
//! sequential<->progressive transcoding (the `jpegtran` role), scan-boundary
//! splitting, and decoding of *truncated* progressive streams — the
//! operation PCR partial reads depend on.
//!
//! ```
//! use pcr_jpeg::{encode, decode, EncodeConfig, ImageBuf};
//! use pcr_jpeg::scansplit::{split_scans, assemble_prefix};
//!
//! let img = ImageBuf::from_raw(32, 32, 3, vec![128; 32 * 32 * 3]).unwrap();
//! let progressive = encode(&img, &EncodeConfig::progressive(85)).unwrap();
//! let layout = split_scans(&progressive).unwrap();
//! // Render from only the first two scans:
//! let preview = assemble_prefix(&progressive, &layout, 2).unwrap();
//! let approx = decode(&preview).unwrap();
//! assert_eq!(approx.width(), 32);
//! ```

// `deny` rather than `forbid`: the `simd` module carries the one
// sanctioned exception — `#[target_feature(enable = "sse2")]` kernel
// entry points whose only precondition (SSE2 present) is a baseline
// guarantee of the x86_64 target. Each site has a `// SAFETY:` comment
// and the static-analysis pass enforces that.
#![deny(unsafe_code)]

#![warn(missing_docs)]

pub mod bitio;
pub mod consts;
pub mod dct;
pub mod decoder;
pub mod dentropy;
pub mod encoder;
pub mod entropy;
pub mod error;
pub mod frame;
pub mod huffman;
pub mod image;
pub mod marker;
#[cfg(test)]
mod exactness_tests;
pub mod metrics_psnr;
#[cfg(test)]
pub(crate) mod reference;
pub mod sample;
pub mod scansplit;
pub mod simd;
pub mod transcode;

pub use decoder::{
    count_scans, decode, decode_coeffs, decode_coeffs_observed, decode_coeffs_pooled,
    decode_coeffs_workers, decode_with, decode_with_workers, DecodeObserver, DecodeScratch,
    DecodedCoeffs, NoopObserver,
};
pub use encoder::{default_progressive_script, encode, EncodeConfig};
pub use error::{Error, Result};
pub use frame::{CoeffPlanes, FrameInfo, ScanInfo, Subsampling};
pub use image::ImageBuf;
pub use metrics_psnr::psnr;
pub use scansplit::{assemble_prefix, scan_chunks, split_scans, ScanLayout};
pub use transcode::{to_progressive, to_sequential, transcode};
