//! Frame, component, and scan models plus dequantized coefficient storage.

use crate::error::{Error, Result};

/// Chroma subsampling mode for color encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Subsampling {
    /// 4:4:4 — chroma at full resolution.
    S444,
    /// 4:2:0 — chroma halved in both dimensions (the common default).
    S420,
}

/// One color component of a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// Component identifier as written in SOF/SOS (1=Y, 2=Cb, 3=Cr here).
    pub id: u8,
    /// Horizontal sampling factor.
    pub h: u8,
    /// Vertical sampling factor.
    pub v: u8,
    /// Quantization table selector.
    pub tq: u8,
    /// Component sample width = ceil(img_w * h / hmax).
    pub width_px: u32,
    /// Component sample height = ceil(img_h * v / vmax).
    pub height_px: u32,
    /// Real block columns = ceil(width_px / 8) — non-interleaved scan width.
    pub blocks_w: u32,
    /// Real block rows = ceil(height_px / 8).
    pub blocks_h: u32,
    /// Allocated block columns, padded to an MCU multiple.
    pub alloc_w: u32,
    /// Allocated block rows, padded to an MCU multiple.
    pub alloc_h: u32,
}

/// A parsed or to-be-written frame header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameInfo {
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// True for progressive (SOF2), false for baseline (SOF0).
    pub progressive: bool,
    /// The components in frame order.
    pub components: Vec<Component>,
    /// Maximum horizontal sampling factor.
    pub hmax: u8,
    /// Maximum vertical sampling factor.
    pub vmax: u8,
    /// MCU columns.
    pub mcus_x: u32,
    /// MCU rows.
    pub mcus_y: u32,
}

impl FrameInfo {
    /// Builds frame geometry for an encode.
    pub fn for_encode(
        width: u32,
        height: u32,
        channels: u8,
        subsampling: Subsampling,
        progressive: bool,
    ) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(Error::BadDimensions { width, height });
        }
        let comps: Vec<(u8, u8, u8, u8)> = match (channels, subsampling) {
            (1, _) => vec![(1, 1, 1, 0)],
            (3, Subsampling::S444) => vec![(1, 1, 1, 0), (2, 1, 1, 1), (3, 1, 1, 1)],
            (3, Subsampling::S420) => vec![(1, 2, 2, 0), (2, 1, 1, 1), (3, 1, 1, 1)],
            _ => return Err(Error::BadInput(format!("unsupported channel count {channels}"))),
        };
        Self::from_components(width, height, progressive, comps)
    }

    /// Builds frame geometry from raw (id, h, v, tq) tuples (decoder path).
    pub fn from_components(
        width: u32,
        height: u32,
        progressive: bool,
        comps: Vec<(u8, u8, u8, u8)>,
    ) -> Result<Self> {
        if comps.is_empty() || comps.len() > 4 {
            return Err(Error::UnsupportedFrame(format!("{} components", comps.len())));
        }
        let hmax = comps.iter().map(|c| c.1).max().unwrap();
        let vmax = comps.iter().map(|c| c.2).max().unwrap();
        if hmax == 0 || vmax == 0 || hmax > 4 || vmax > 4 {
            return Err(Error::UnsupportedFrame("bad sampling factors".into()));
        }
        // T.81 B.2.2: Tq selects one of four quantization tables. Pixel
        // reconstruction indexes the table array with it unchecked.
        if let Some(c) = comps.iter().find(|c| c.3 > 3) {
            return Err(Error::UnsupportedFrame(format!("quant table selector {}", c.3)));
        }
        let mcus_x = width.div_ceil(8 * u32::from(hmax));
        let mcus_y = height.div_ceil(8 * u32::from(vmax));
        let components = comps
            .into_iter()
            .map(|(id, h, v, tq)| {
                let width_px = (width * u32::from(h)).div_ceil(u32::from(hmax));
                let height_px = (height * u32::from(v)).div_ceil(u32::from(vmax));
                Component {
                    id,
                    h,
                    v,
                    tq,
                    width_px,
                    height_px,
                    blocks_w: width_px.div_ceil(8),
                    blocks_h: height_px.div_ceil(8),
                    alloc_w: mcus_x * u32::from(h),
                    alloc_h: mcus_y * u32::from(v),
                }
            })
            .collect();
        Ok(Self { width, height, progressive, components, hmax, vmax, mcus_x, mcus_y })
    }
}

/// Quantized DCT coefficients for every component, MCU-padded.
///
/// Each component stores `alloc_w * alloc_h` blocks of 64 `i16` values in
/// natural (row-major) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoeffPlanes {
    planes: Vec<Vec<i16>>,
}

impl CoeffPlanes {
    /// Allocates zeroed planes for the frame.
    pub fn new(frame: &FrameInfo) -> Self {
        Self::with_pool(frame, &mut Vec::new())
    }

    /// Builds zeroed planes for the frame, reusing buffer capacity from
    /// `pool` where available. The inverse of [`CoeffPlanes::recycle_into`];
    /// together they let a decode loop run without per-image coefficient
    /// allocations.
    pub fn with_pool(frame: &FrameInfo, pool: &mut Vec<Vec<i16>>) -> Self {
        let planes = frame
            .components
            .iter()
            .map(|c| {
                let need = c.alloc_w as usize * c.alloc_h as usize * 64;
                let mut buf = pool.pop().unwrap_or_default();
                buf.clear();
                buf.resize(need, 0);
                buf
            })
            .collect();
        Self { planes }
    }

    /// Returns the plane buffers to `pool` for reuse by a later
    /// [`CoeffPlanes::with_pool`].
    pub fn recycle_into(self, pool: &mut Vec<Vec<i16>>) {
        pool.extend(self.planes);
    }

    /// Immutable block at (component, block row, block col) — 64 coefficients
    /// in natural order.
    #[inline]
    pub fn block(&self, frame: &FrameInfo, comp: usize, row: u32, col: u32) -> &[i16] {
        let c = &frame.components[comp];
        let idx = (row as usize * c.alloc_w as usize + col as usize) * 64;
        &self.planes[comp][idx..idx + 64]
    }

    /// Mutable block accessor.
    #[inline]
    pub fn block_mut(&mut self, frame: &FrameInfo, comp: usize, row: u32, col: u32) -> &mut [i16] {
        let c = &frame.components[comp];
        let idx = (row as usize * c.alloc_w as usize + col as usize) * 64;
        &mut self.planes[comp][idx..idx + 64]
    }

    /// Raw plane for a component.
    pub fn plane(&self, comp: usize) -> &[i16] {
        &self.planes[comp]
    }

    /// Mutable raw plane for a component.
    pub fn plane_mut(&mut self, comp: usize) -> &mut [i16] {
        &mut self.planes[comp]
    }

    /// Number of component planes.
    pub fn num_components(&self) -> usize {
        self.planes.len()
    }
}

/// Mutable 8x8-block access for entropy decoding.
///
/// Implemented by the full [`CoeffPlanes`] (the normal decode target) and
/// by row-band views over a single component's plane, which is how
/// restart-segment-parallel decode hands disjoint `&mut` bands of one
/// image to multiple workers: the scan logic in `dentropy` is written
/// once against this trait and never learns which it is writing into.
pub trait BlockStore {
    /// Mutable 64-coefficient block at (component, block row, block col),
    /// natural order.
    fn block_mut(&mut self, frame: &FrameInfo, comp: usize, row: u32, col: u32) -> &mut [i16];
}

impl BlockStore for CoeffPlanes {
    #[inline]
    fn block_mut(&mut self, frame: &FrameInfo, comp: usize, row: u32, col: u32) -> &mut [i16] {
        CoeffPlanes::block_mut(self, frame, comp, row, col)
    }
}

/// A `&mut` view over a contiguous band of block rows of one component's
/// plane. Disjoint bands of the same plane (from `split_at_mut`) can be
/// handed to different threads, which is what lets restart segments of a
/// row-aligned scan decode in parallel without locking.
#[derive(Debug)]
pub struct RowBandStore<'a> {
    /// Component index the band belongs to.
    pub comp: usize,
    /// First block row covered by `data`.
    pub row0: u32,
    /// Allocated blocks per row (the plane stride).
    pub alloc_w: u32,
    /// The band: `(rows * alloc_w) * 64` coefficients.
    pub data: &'a mut [i16],
}

impl BlockStore for RowBandStore<'_> {
    #[inline]
    fn block_mut(&mut self, _frame: &FrameInfo, comp: usize, row: u32, col: u32) -> &mut [i16] {
        debug_assert_eq!(comp, self.comp, "band store fed a foreign component");
        debug_assert!(row >= self.row0, "block row below the band");
        let idx = ((row - self.row0) as usize * self.alloc_w as usize + col as usize) * 64;
        &mut self.data[idx..idx + 64]
    }
}

/// One component's participation in a scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanComponent {
    /// Index into `FrameInfo::components`.
    pub comp_index: usize,
    /// DC Huffman table selector.
    pub dc_table: u8,
    /// AC Huffman table selector.
    pub ac_table: u8,
}

/// A scan header: which components, spectral band, successive approximation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanInfo {
    /// Components participating (1 for non-interleaved AC scans).
    pub components: Vec<ScanComponent>,
    /// Spectral selection start (0 for DC scans).
    pub ss: u8,
    /// Spectral selection end (0 for DC scans, up to 63).
    pub se: u8,
    /// Successive approximation high bit (0 on first pass).
    pub ah: u8,
    /// Successive approximation low bit (point transform).
    pub al: u8,
}

impl ScanInfo {
    /// Validates the scan against T.81 rules for progressive mode.
    pub fn validate(&self, frame: &FrameInfo) -> Result<()> {
        if self.components.is_empty() || self.components.len() > 4 {
            return Err(Error::BadScan("bad component count".into()));
        }
        for sc in &self.components {
            if sc.comp_index >= frame.components.len() {
                return Err(Error::BadScan("component index out of range".into()));
            }
        }
        if self.se > 63 || self.ss > self.se {
            return Err(Error::BadScan(format!("bad spectral range {}..{}", self.ss, self.se)));
        }
        if frame.progressive {
            if self.ss == 0 && self.se != 0 {
                return Err(Error::BadScan("DC scan must have Se=0".into()));
            }
            if self.ss > 0 && self.components.len() != 1 {
                return Err(Error::BadScan("AC scans must be non-interleaved".into()));
            }
            if self.ah != 0 && self.ah != self.al + 1 {
                return Err(Error::BadScan("refinement must lower Al by exactly 1".into()));
            }
        } else if self.ss != 0 || self.se != 63 || self.ah != 0 || self.al != 0 {
            return Err(Error::BadScan("sequential scan must cover 0..63".into()));
        }
        Ok(())
    }

    /// True if this is a DC scan (spectral start 0).
    pub fn is_dc(&self) -> bool {
        self.ss == 0
    }

    /// True if this is a refinement pass (Ah > 0).
    pub fn is_refinement(&self) -> bool {
        self.ah != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_420() {
        let f = FrameInfo::for_encode(100, 60, 3, Subsampling::S420, false).unwrap();
        assert_eq!(f.hmax, 2);
        assert_eq!(f.mcus_x, 7); // ceil(100/16)
        assert_eq!(f.mcus_y, 4); // ceil(60/16)
        let y = &f.components[0];
        assert_eq!((y.width_px, y.height_px), (100, 60));
        assert_eq!((y.blocks_w, y.blocks_h), (13, 8));
        assert_eq!((y.alloc_w, y.alloc_h), (14, 8));
        let cb = &f.components[1];
        assert_eq!((cb.width_px, cb.height_px), (50, 30));
        assert_eq!((cb.blocks_w, cb.blocks_h), (7, 4));
        assert_eq!((cb.alloc_w, cb.alloc_h), (7, 4));
    }

    #[test]
    fn geometry_444_and_gray() {
        let f = FrameInfo::for_encode(17, 9, 3, Subsampling::S444, true).unwrap();
        for c in &f.components {
            assert_eq!((c.blocks_w, c.blocks_h), (3, 2));
            assert_eq!((c.alloc_w, c.alloc_h), (3, 2));
        }
        let g = FrameInfo::for_encode(8, 8, 1, Subsampling::S420, false).unwrap();
        assert_eq!(g.components.len(), 1);
        assert_eq!(g.components[0].blocks_w, 1);
    }

    #[test]
    fn coeff_planes_block_addressing() {
        let f = FrameInfo::for_encode(32, 32, 3, Subsampling::S420, false).unwrap();
        let mut cp = CoeffPlanes::new(&f);
        cp.block_mut(&f, 0, 1, 2)[5] = 42;
        assert_eq!(cp.block(&f, 0, 1, 2)[5], 42);
        assert_eq!(cp.block(&f, 0, 1, 1)[5], 0);
        assert_eq!(cp.num_components(), 3);
    }

    #[test]
    fn scan_validation() {
        let f = FrameInfo::for_encode(16, 16, 3, Subsampling::S420, true).unwrap();
        let dc = ScanInfo {
            components: (0..3)
                .map(|i| ScanComponent { comp_index: i, dc_table: 0, ac_table: 0 })
                .collect(),
            ss: 0,
            se: 0,
            ah: 0,
            al: 1,
        };
        dc.validate(&f).unwrap();
        let bad_ac_interleaved = ScanInfo { ss: 1, se: 5, ..dc.clone() };
        assert!(bad_ac_interleaved.validate(&f).is_err());
        let ac = ScanInfo {
            components: vec![ScanComponent { comp_index: 0, dc_table: 0, ac_table: 0 }],
            ss: 1,
            se: 5,
            ah: 0,
            al: 2,
        };
        ac.validate(&f).unwrap();
        let bad_refine = ScanInfo { ah: 3, al: 1, ..ac.clone() };
        assert!(bad_refine.validate(&f).is_err());
        let bad_range = ScanInfo { ss: 10, se: 5, ..ac };
        assert!(bad_range.validate(&f).is_err());
    }

    #[test]
    fn rejects_zero_dims() {
        assert!(FrameInfo::for_encode(0, 10, 3, Subsampling::S420, false).is_err());
    }
}
