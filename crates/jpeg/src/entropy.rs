//! Entropy-coded segment generation for baseline and progressive scans.
//!
//! Encoding is written against an [`EntropySink`] so the same traversal can
//! run twice per scan: once gathering symbol statistics (to build optimal
//! Huffman tables, as `jpegtran -optimize` does and progressive scans
//! require in practice) and once emitting bits.
//!
//! The progressive successive-approximation logic mirrors libjpeg's
//! `jcphuff.c` (`encode_mcu_AC_first` / `encode_mcu_AC_refine`), which is
//! the de-facto reference for the corner cases T.81 figure G.7 leaves
//! implicit.

use crate::bitio::bit_size;
use crate::dentropy::mcu_units;
use crate::error::{Error, Result};
use crate::frame::{CoeffPlanes, FrameInfo, ScanInfo};
use std::ops::Range;

/// Receives Huffman symbols and raw bits during scan encoding.
pub trait EntropySink {
    /// A DC-class symbol coded with DC table `table`.
    fn dc_symbol(&mut self, table: u8, sym: u8);
    /// An AC-class symbol coded with AC table `table`.
    fn ac_symbol(&mut self, table: u8, sym: u8);
    /// `n` raw bits (magnitude/sign/correction bits).
    fn bits(&mut self, value: u32, n: u32);
    /// A restart boundary: `RSTn` where `n` cycles 0..8. Statistic sinks
    /// ignore this (the marker codes no symbols); byte sinks must pad to
    /// a byte boundary and emit the marker.
    fn restart(&mut self, n: u8) {
        let _ = n;
    }
}

/// Counts symbol frequencies per table; used to build optimal tables.
#[derive(Debug)]
pub struct StatsSink {
    /// Frequency of each symbol per DC table id.
    pub dc_counts: [[u32; 256]; 4],
    /// Frequency of each symbol per AC table id.
    pub ac_counts: [[u32; 256]; 4],
}

impl Default for StatsSink {
    fn default() -> Self {
        Self { dc_counts: [[0; 256]; 4], ac_counts: [[0; 256]; 4] }
    }
}

impl StatsSink {
    /// Fresh zeroed counts.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if any symbol of the DC table was used.
    pub fn dc_used(&self, table: u8) -> bool {
        self.dc_counts[table as usize].iter().any(|&c| c > 0)
    }

    /// True if any symbol of the AC table was used.
    pub fn ac_used(&self, table: u8) -> bool {
        self.ac_counts[table as usize].iter().any(|&c| c > 0)
    }
}

impl EntropySink for StatsSink {
    fn dc_symbol(&mut self, table: u8, sym: u8) {
        self.dc_counts[table as usize][sym as usize] += 1;
    }
    fn ac_symbol(&mut self, table: u8, sym: u8) {
        self.ac_counts[table as usize][sym as usize] += 1;
    }
    fn bits(&mut self, _value: u32, _n: u32) {}
}

/// Writes symbols/bits through Huffman encoders into a [`crate::bitio::BitWriter`].
pub struct WriteSink<'a> {
    /// Destination bit writer.
    pub writer: &'a mut crate::bitio::BitWriter,
    /// DC encoders per table id.
    pub dc: [Option<crate::huffman::HuffEncoder>; 4],
    /// AC encoders per table id.
    pub ac: [Option<crate::huffman::HuffEncoder>; 4],
}

impl EntropySink for WriteSink<'_> {
    fn dc_symbol(&mut self, table: u8, sym: u8) {
        self.dc[table as usize]
            .as_ref()
            .expect("DC table present")
            .encode(self.writer, sym);
    }
    fn ac_symbol(&mut self, table: u8, sym: u8) {
        self.ac[table as usize]
            .as_ref()
            .expect("AC table present")
            .encode(self.writer, sym);
    }
    fn bits(&mut self, value: u32, n: u32) {
        self.writer.put_bits(value, n);
    }
    fn restart(&mut self, n: u8) {
        self.writer.restart(n);
    }
}

/// Magnitude coding: returns `(bit pattern, nbits)` for a signed value, with
/// the one's-complement convention for negatives (T.81 F.1.2.1).
#[inline]
fn magnitude(v: i32) -> (u32, u32) {
    let n = bit_size(v);
    let pattern = if v < 0 { (v - 1) as u32 } else { v as u32 };
    (pattern & ((1u32 << n) - 1), n)
}

/// Encodes one full scan's entropy data into `sink` with no restarts.
pub fn encode_scan(
    frame: &FrameInfo,
    coeffs: &CoeffPlanes,
    scan: &ScanInfo,
    sink: &mut dyn EntropySink,
) -> Result<()> {
    encode_scan_restart(frame, coeffs, scan, sink, 0)
}

/// Encodes one scan's entropy data into `sink`, emitting an `RSTn`
/// boundary every `interval` MCU units (0 disables restarts).
///
/// Per T.81 each restart fully resets the entropy state: DC predictors,
/// the end-of-band run, and buffered correction bits are flushed at the
/// boundary and start fresh in the next segment. Both the statistics and
/// byte sinks see the same segmented traversal, so optimized Huffman
/// tables account for the extra flush symbols restarts introduce.
pub fn encode_scan_restart(
    frame: &FrameInfo,
    coeffs: &CoeffPlanes,
    scan: &ScanInfo,
    sink: &mut dyn EntropySink,
    interval: u32,
) -> Result<()> {
    scan.validate(frame)?;
    let total = mcu_units(frame, scan);
    if interval == 0 || interval >= total {
        return encode_scan_units(frame, coeffs, scan, sink, 0..total);
    }
    let nseg = total.div_ceil(interval);
    for seg in 0..nseg {
        let start = seg * interval;
        let end = (start + interval).min(total);
        encode_scan_units(frame, coeffs, scan, sink, start..end)?;
        if seg + 1 < nseg {
            sink.restart((seg % 8) as u8);
        }
    }
    Ok(())
}

/// Encodes one restart segment (a contiguous MCU-unit range) with fresh
/// entropy state.
fn encode_scan_units(
    frame: &FrameInfo,
    coeffs: &CoeffPlanes,
    scan: &ScanInfo,
    sink: &mut dyn EntropySink,
    units: Range<u32>,
) -> Result<()> {
    if !frame.progressive {
        return encode_sequential(frame, coeffs, scan, sink, units);
    }
    if scan.is_dc() {
        if scan.is_refinement() {
            encode_dc_refine(frame, coeffs, scan, sink, units)
        } else {
            encode_dc_first(frame, coeffs, scan, sink, units)
        }
    } else if scan.is_refinement() {
        encode_ac_refine(frame, coeffs, scan, sink, units)
    } else {
        encode_ac_first(frame, coeffs, scan, sink, units)
    }
}

/// Iterates the blocks of MCU units `units` — interleaved scans in MCU
/// order, single-component scans in row-major block order — calling
/// `f(comp_slot, row, col)` where `comp_slot` indexes `scan.components`.
fn for_each_block(
    frame: &FrameInfo,
    scan: &ScanInfo,
    units: Range<u32>,
    mut f: impl FnMut(usize, u32, u32) -> Result<()>,
) -> Result<()> {
    if scan.components.len() == 1 {
        let c = &frame.components[scan.components[0].comp_index];
        let bw = c.blocks_w;
        let mut row = units.start / bw;
        let mut col = units.start % bw;
        for _ in units {
            f(0, row, col)?;
            col += 1;
            if col == bw {
                col = 0;
                row += 1;
            }
        }
        return Ok(());
    }
    for m in units {
        let my = m / frame.mcus_x;
        let mx = m % frame.mcus_x;
        for (slot, sc) in scan.components.iter().enumerate() {
            let c = &frame.components[sc.comp_index];
            for by in 0..u32::from(c.v) {
                for bx in 0..u32::from(c.h) {
                    f(slot, my * u32::from(c.v) + by, mx * u32::from(c.h) + bx)?;
                }
            }
        }
    }
    Ok(())
}

fn encode_sequential(
    frame: &FrameInfo,
    coeffs: &CoeffPlanes,
    scan: &ScanInfo,
    sink: &mut dyn EntropySink,
    units: Range<u32>,
) -> Result<()> {
    let mut preds = vec![0i32; scan.components.len()];
    for_each_block(frame, scan, units, |slot, row, col| {
        let sc = scan.components[slot];
        let block = coeffs.block(frame, sc.comp_index, row, col);
        // DC
        let dc = i32::from(block[0]);
        let diff = dc - preds[slot];
        preds[slot] = dc;
        let (pat, n) = magnitude(diff);
        sink.dc_symbol(sc.dc_table, n as u8);
        sink.bits(pat, n);
        // AC
        let mut r = 0u32;
        for k in 1..64 {
            let v = i32::from(block[crate::consts::ZIGZAG[k]]);
            if v == 0 {
                r += 1;
                continue;
            }
            while r > 15 {
                sink.ac_symbol(sc.ac_table, 0xF0);
                r -= 16;
            }
            let (pat, n) = magnitude(v);
            if n > 10 {
                return Err(Error::BadInput("AC coefficient out of range".into()));
            }
            sink.ac_symbol(sc.ac_table, ((r as u8) << 4) | n as u8);
            sink.bits(pat, n);
            r = 0;
        }
        if r > 0 {
            sink.ac_symbol(sc.ac_table, 0x00); // EOB
        }
        Ok(())
    })
}

fn encode_dc_first(
    frame: &FrameInfo,
    coeffs: &CoeffPlanes,
    scan: &ScanInfo,
    sink: &mut dyn EntropySink,
    units: Range<u32>,
) -> Result<()> {
    let al = u32::from(scan.al);
    let mut preds = vec![0i32; scan.components.len()];
    for_each_block(frame, scan, units, |slot, row, col| {
        let sc = scan.components[slot];
        let dc = i32::from(coeffs.block(frame, sc.comp_index, row, col)[0]) >> al;
        let diff = dc - preds[slot];
        preds[slot] = dc;
        let (pat, n) = magnitude(diff);
        sink.dc_symbol(sc.dc_table, n as u8);
        sink.bits(pat, n);
        Ok(())
    })
}

fn encode_dc_refine(
    frame: &FrameInfo,
    coeffs: &CoeffPlanes,
    scan: &ScanInfo,
    sink: &mut dyn EntropySink,
    units: Range<u32>,
) -> Result<()> {
    let al = u32::from(scan.al);
    for_each_block(frame, scan, units, |slot, row, col| {
        let sc = scan.components[slot];
        let dc = i32::from(coeffs.block(frame, sc.comp_index, row, col)[0]);
        sink.bits(((dc >> al) & 1) as u32, 1);
        Ok(())
    })
}

/// Per-scan AC encoding state: the lazily flushed end-of-band run plus (for
/// refinement scans) buffered correction bits.
struct AcState {
    eobrun: u32,
    pending: Vec<u8>,
    table: u8,
}

impl AcState {
    fn flush_eobrun(&mut self, sink: &mut dyn EntropySink) {
        if self.eobrun > 0 {
            let nbits = 31 - self.eobrun.leading_zeros();
            sink.ac_symbol(self.table, (nbits << 4) as u8);
            if nbits > 0 {
                sink.bits(self.eobrun & ((1 << nbits) - 1), nbits);
            }
            self.eobrun = 0;
        }
        self.flush_pending(sink);
    }

    fn flush_pending(&mut self, sink: &mut dyn EntropySink) {
        for &b in &self.pending {
            sink.bits(u32::from(b), 1);
        }
        self.pending.clear();
    }
}

fn encode_ac_first(
    frame: &FrameInfo,
    coeffs: &CoeffPlanes,
    scan: &ScanInfo,
    sink: &mut dyn EntropySink,
    units: Range<u32>,
) -> Result<()> {
    let sc = scan.components[0];
    let al = u32::from(scan.al);
    let mut st = AcState { eobrun: 0, pending: Vec::new(), table: sc.ac_table };
    for_each_block(frame, scan, units, |_slot, row, col| {
        let block = coeffs.block(frame, sc.comp_index, row, col);
        let mut r = 0u32;
        for k in scan.ss as usize..=scan.se as usize {
            let raw = i32::from(block[crate::consts::ZIGZAG[k]]);
            if raw == 0 {
                r += 1;
                continue;
            }
            let neg = raw < 0;
            let t = raw.unsigned_abs() >> al;
            if t == 0 {
                r += 1;
                continue;
            }
            st.flush_eobrun(sink);
            while r > 15 {
                sink.ac_symbol(sc.ac_table, 0xF0);
                r -= 16;
            }
            let nbits = 32 - t.leading_zeros();
            if nbits > 10 {
                return Err(Error::BadInput("AC coefficient out of range".into()));
            }
            sink.ac_symbol(sc.ac_table, ((r as u8) << 4) | nbits as u8);
            let pattern = if neg { !t } else { t } & ((1 << nbits) - 1);
            sink.bits(pattern, nbits);
            r = 0;
        }
        if r > 0 {
            st.eobrun += 1;
            if st.eobrun == 0x7FFF {
                st.flush_eobrun(sink);
            }
        }
        Ok(())
    })?;
    st.flush_eobrun(sink);
    Ok(())
}

fn encode_ac_refine(
    frame: &FrameInfo,
    coeffs: &CoeffPlanes,
    scan: &ScanInfo,
    sink: &mut dyn EntropySink,
    units: Range<u32>,
) -> Result<()> {
    let sc = scan.components[0];
    let al = u32::from(scan.al);
    let mut st = AcState { eobrun: 0, pending: Vec::new(), table: sc.ac_table };
    for_each_block(frame, scan, units, |_slot, row, col| {
        let block = coeffs.block(frame, sc.comp_index, row, col);
        // Pass 1: point-transformed absolute values and the EOB position
        // (index of the last coefficient that becomes newly nonzero).
        let mut absval = [0u32; 64];
        let mut eob = scan.ss as usize; // any value < first 1 is fine
        let mut has_new = false;
        for k in scan.ss as usize..=scan.se as usize {
            let raw = i32::from(block[crate::consts::ZIGZAG[k]]);
            let t = raw.unsigned_abs() >> al;
            absval[k] = t;
            if t == 1 {
                eob = k;
                has_new = true;
            }
        }
        if !has_new {
            eob = 0; // ensures `k <= eob` is false in the ZRL fold check
        }
        let mut r = 0u32;
        let mut br: Vec<u8> = Vec::new();
        for k in scan.ss as usize..=scan.se as usize {
            let t = absval[k];
            if t == 0 {
                r += 1;
                continue;
            }
            // Emit required ZRLs unless they fold into the trailing EOB.
            while r > 15 && k <= eob {
                st.flush_eobrun(sink);
                sink.ac_symbol(sc.ac_table, 0xF0);
                r -= 16;
                for &b in &br {
                    sink.bits(u32::from(b), 1);
                }
                br.clear();
            }
            if t > 1 {
                // Previously nonzero: just a correction bit.
                br.push((t & 1) as u8);
                continue;
            }
            // Newly nonzero coefficient.
            st.flush_eobrun(sink);
            sink.ac_symbol(sc.ac_table, ((r as u8) << 4) | 1);
            let sign = if i32::from(block[crate::consts::ZIGZAG[k]]) < 0 { 0 } else { 1 };
            sink.bits(sign, 1);
            for &b in &br {
                sink.bits(u32::from(b), 1);
            }
            br.clear();
            r = 0;
        }
        if r > 0 || !br.is_empty() {
            st.eobrun += 1;
            st.pending.append(&mut br);
            // Flush well before the correction-bit buffer could grow
            // unboundedly (libjpeg's MAX_CORR_BITS discipline).
            if st.eobrun == 0x7FFF || st.pending.len() > 930 {
                st.flush_eobrun(sink);
            }
        }
        Ok(())
    })?;
    st.flush_eobrun(sink);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{ScanComponent, Subsampling};

    fn tiny_frame(progressive: bool) -> (FrameInfo, CoeffPlanes) {
        let frame = FrameInfo::for_encode(16, 16, 1, Subsampling::S444, progressive).unwrap();
        let mut coeffs = CoeffPlanes::new(&frame);
        // Deterministic pseudo-content.
        for row in 0..2 {
            for col in 0..2 {
                let b = coeffs.block_mut(&frame, 0, row, col);
                b[0] = 100 + (row * 2 + col) as i16 * 10;
                b[1] = 7;
                b[8] = -3;
                b[33] = 1;
                b[63] = -1;
            }
        }
        (frame, coeffs)
    }

    fn scan_all_dc(al: u8, ah: u8) -> ScanInfo {
        ScanInfo {
            components: vec![ScanComponent { comp_index: 0, dc_table: 0, ac_table: 0 }],
            ss: 0,
            se: 0,
            ah,
            al,
        }
    }

    #[test]
    fn sequential_scan_produces_symbols() {
        let (frame, coeffs) = tiny_frame(false);
        let scan = ScanInfo {
            components: vec![ScanComponent { comp_index: 0, dc_table: 0, ac_table: 0 }],
            ss: 0,
            se: 63,
            ah: 0,
            al: 0,
        };
        let mut stats = StatsSink::new();
        encode_scan(&frame, &coeffs, &scan, &mut stats).unwrap();
        assert!(stats.dc_used(0));
        assert!(stats.ac_used(0));
        // 4 blocks -> 4 DC symbols.
        let dc_total: u32 = stats.dc_counts[0].iter().sum();
        assert_eq!(dc_total, 4);
    }

    #[test]
    fn dc_first_and_refine_symbol_counts() {
        let (frame, coeffs) = tiny_frame(true);
        let mut stats = StatsSink::new();
        encode_scan(&frame, &coeffs, &scan_all_dc(1, 0), &mut stats).unwrap();
        let dc_total: u32 = stats.dc_counts[0].iter().sum();
        assert_eq!(dc_total, 4);
        // Refinement emits no Huffman symbols at all.
        let mut stats = StatsSink::new();
        encode_scan(&frame, &coeffs, &scan_all_dc(0, 1), &mut stats).unwrap();
        assert!(!stats.dc_used(0));
    }

    #[test]
    fn ac_first_emits_eob_runs() {
        let (frame, coeffs) = tiny_frame(true);
        let scan = ScanInfo {
            components: vec![ScanComponent { comp_index: 0, dc_table: 0, ac_table: 0 }],
            ss: 1,
            se: 63,
            ah: 0,
            al: 0,
        };
        let mut stats = StatsSink::new();
        encode_scan(&frame, &coeffs, &scan, &mut stats).unwrap();
        assert!(stats.ac_used(0));
    }

    #[test]
    fn magnitude_coding_negative_is_ones_complement() {
        assert_eq!(magnitude(5), (0b101, 3));
        assert_eq!(magnitude(-5), (0b010, 3));
        assert_eq!(magnitude(1), (1, 1));
        assert_eq!(magnitude(-1), (0, 1));
        assert_eq!(magnitude(0), (0, 0));
    }

    #[test]
    fn interleaved_block_order_covers_all_components() {
        let frame = FrameInfo::for_encode(32, 32, 3, Subsampling::S420, false).unwrap();
        let scan = ScanInfo {
            components: (0..3)
                .map(|i| ScanComponent { comp_index: i, dc_table: 0, ac_table: 0 })
                .collect(),
            ss: 0,
            se: 63,
            ah: 0,
            al: 0,
        };
        let mut count = [0usize; 3];
        let total = mcu_units(&frame, &scan);
        for_each_block(&frame, &scan, 0..total, |slot, _r, _c| {
            count[slot] += 1;
            Ok(())
        })
        .unwrap();
        // 2x2 MCUs: Y has 4 blocks per MCU, chroma 1 each.
        assert_eq!(count, [16, 4, 4]);
    }
}
