//! Retained reference implementations of the decode hot-path primitives
//! (compiled only for tests): the per-byte bit reader, the canonical
//! mincode/maxcode Huffman decoder, and the O(8³) basis-matrix DCT that
//! the AAN butterfly replaced. The bit-exactness suite decodes every
//! stream through both stacks and asserts *byte-identical* pixels — the
//! guarantee that the fast path is an optimization, not a behaviour
//! change.
//!
//! These are the pre-optimization algorithms for the three *replaced*
//! layers, with one deliberate alignment: the DCT oracle computes in
//! `f64` (the old code truncated its basis to `f32`) and pixels round
//! through the shared [`crate::dct::descale`] contract, because
//! cross-implementation byte identity is only well-defined when both
//! sides target the same arithmetic contract. Stages this PR changed
//! *for both stacks* — the fixed-point YCbCr conversion, the
//! `planes_to_image` upsampling, and the snap-rounding contract itself —
//! are intentionally shared rather than duplicated: the suite proves the
//! fast entropy/DCT primitives are exact substitutes, not that decoded
//! pixels match the pre-PR release bit for bit (rare ±1 rounding shifts
//! vs. the old f32 color math are expected and covered by the
//! tolerance-based quality tests).

use crate::bitio::BitSource;
use crate::consts::*;
use crate::decoder::DecodedCoeffs;
use crate::dentropy::{decode_scan_range, mcu_units, DecodeTables};
use crate::error::{Error, Result};
use crate::frame::{CoeffPlanes, FrameInfo, ScanInfo};
use crate::huffman::{HuffTable, SymbolDecoder};
use crate::image::ImageBuf;
use crate::marker::{self, Segment, SegmentReader};
use crate::sample::{reconstruct_planes_with, planes_to_image, BlockIdct};

/// The original byte-at-a-time bit reader: pulls one byte per `fill`,
/// resolving 0xFF stuffing as it goes. Semantically identical to the
/// batched [`crate::bitio::BitReader`]; kept as the oracle the reader
/// equivalence tests run against.
#[derive(Debug)]
pub(crate) struct ReferenceBitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u32,
    nbits: u32,
    marker_hit: Option<u8>,
}

impl<'a> ReferenceBitReader<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0, acc: 0, nbits: 0, marker_hit: None }
    }

    pub(crate) fn marker(&self) -> Option<u8> {
        self.marker_hit
    }

    pub(crate) fn exhausted(&self) -> bool {
        self.marker_hit.is_some()
    }

    fn fill(&mut self) {
        if self.marker_hit.is_some() {
            self.acc <<= 8;
            self.nbits += 8;
            return;
        }
        if self.pos >= self.data.len() {
            self.marker_hit = Some(0x00);
            self.acc <<= 8;
            self.nbits += 8;
            return;
        }
        let b = self.data[self.pos];
        self.pos += 1;
        if b == 0xFF {
            match self.data.get(self.pos) {
                Some(0x00) => {
                    self.pos += 1; // stuffed 0xFF
                    self.acc = (self.acc << 8) | 0xFF;
                }
                Some(&m) => {
                    self.marker_hit = Some(m);
                    self.pos -= 1; // leave reader at the 0xFF
                    self.acc <<= 8;
                }
                None => {
                    self.marker_hit = Some(0x00);
                    self.acc <<= 8;
                }
            }
        } else {
            self.acc = (self.acc << 8) | u32::from(b);
        }
        self.nbits += 8;
    }
}

impl BitSource for ReferenceBitReader<'_> {
    fn get_bits(&mut self, n: u32) -> Result<u32> {
        if n == 0 {
            return Ok(0);
        }
        debug_assert!(n <= 16);
        while self.nbits < n {
            self.fill();
        }
        self.nbits -= n;
        Ok((self.acc >> self.nbits) & ((1u32 << n) - 1))
    }

    fn peek_bits(&mut self, n: u32) -> Result<u32> {
        debug_assert!(n <= 16);
        while self.nbits < n {
            self.fill();
        }
        Ok((self.acc >> (self.nbits - n)) & ((1u32 << n) - 1))
    }

    fn consume(&mut self, n: u32) -> Result<()> {
        if self.nbits < n {
            return Err(Error::CorruptData("consume past fill".into()));
        }
        self.nbits -= n;
        Ok(())
    }
}

/// The canonical Huffman decoder (T.81 F.2.2.3): walks code lengths with
/// mincode/maxcode/valptr, one bit at a time past an initial probe — the
/// algorithm the two-level LUT replaced.
#[derive(Debug, Clone)]
pub(crate) struct ReferenceHuffDecoder {
    mincode: [i32; 17],
    maxcode: [i32; 17],
    valptr: [usize; 17],
    vals: Vec<u8>,
}

impl ReferenceHuffDecoder {
    pub(crate) fn from_table(t: &HuffTable) -> Result<Self> {
        let mut mincode = [0i32; 17];
        let mut maxcode = [-1i32; 17];
        let mut valptr = [0usize; 17];
        let mut code = 0i32;
        let mut k = 0usize;
        for l in 1..=16usize {
            if t.bits[l - 1] > 0 {
                valptr[l] = k;
                mincode[l] = code;
                code += i32::from(t.bits[l - 1]);
                k += t.bits[l - 1] as usize;
                maxcode[l] = code - 1;
            } else {
                maxcode[l] = -1;
            }
            code <<= 1;
        }
        Ok(Self { mincode, maxcode, valptr, vals: t.vals.clone() })
    }
}

impl SymbolDecoder for ReferenceHuffDecoder {
    fn decode_symbol<R: BitSource>(&self, r: &mut R) -> Result<u8> {
        let mut code = r.get_bit()? as i32;
        let mut l = 1usize;
        loop {
            if self.maxcode[l] >= 0 && code <= self.maxcode[l] {
                let off = (code - self.mincode[l]) as usize;
                return Ok(self.vals[self.valptr[l] + off]);
            }
            if l >= 16 {
                return Err(Error::CorruptData("invalid Huffman code".into()));
            }
            code = (code << 1) | r.get_bit()? as i32;
            l += 1;
        }
    }
}

/// `BASIS[u][x] = c(u) * cos((2x+1) u pi / 16) / 2`, the orthonormal 1-D
/// DCT-II basis — the old implementation's matrix, at f64 precision.
fn basis() -> &'static [[f64; 8]; 8] {
    use std::sync::OnceLock;
    static BASIS: OnceLock<[[f64; 8]; 8]> = OnceLock::new();
    BASIS.get_or_init(|| {
        let mut b = [[0f64; 8]; 8];
        for (u, row) in b.iter_mut().enumerate() {
            let cu = if u == 0 { (0.5f64).sqrt() } else { 1.0 };
            for (x, v) in row.iter_mut().enumerate() {
                *v = 0.5
                    * cu
                    * ((2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0).cos();
            }
        }
        b
    })
}

/// Forward 8x8 DCT by basis-matrix multiplication (the retained oracle).
pub(crate) fn reference_forward_dct(input: &[f64; 64], output: &mut [f64; 64]) {
    let b = basis();
    let mut tmp = [0f64; 64];
    for y in 0..8 {
        for u in 0..8 {
            let mut s = 0f64;
            for x in 0..8 {
                s += input[y * 8 + x] * b[u][x];
            }
            tmp[y * 8 + u] = s;
        }
    }
    for v in 0..8 {
        for u in 0..8 {
            let mut s = 0f64;
            for y in 0..8 {
                s += tmp[y * 8 + u] * b[v][y];
            }
            output[v * 8 + u] = s;
        }
    }
}

/// Inverse 8x8 DCT by basis-matrix multiplication (the retained oracle).
pub(crate) fn reference_inverse_dct(input: &[f64; 64], output: &mut [f64; 64]) {
    let b = basis();
    let mut tmp = [0f64; 64];
    for u in 0..8 {
        for y in 0..8 {
            let mut s = 0f64;
            for v in 0..8 {
                s += input[v * 8 + u] * b[v][y];
            }
            tmp[y * 8 + u] = s;
        }
    }
    for y in 0..8 {
        for x in 0..8 {
            let mut s = 0f64;
            for u in 0..8 {
                s += tmp[y * 8 + u] * b[u][x];
            }
            output[y * 8 + x] = s;
        }
    }
}

/// Basis-matrix pixel kernel: plain f64 dequantization then the oracle
/// IDCT, rounded to pixels through the same `descale` contract as the
/// fast kernel.
#[derive(Debug)]
struct ReferenceBlockIdct {
    q: [u16; 64],
}

impl Default for ReferenceBlockIdct {
    fn default() -> Self {
        Self { q: [0; 64] }
    }
}

impl BlockIdct for ReferenceBlockIdct {
    fn begin_table(&mut self, q: &[u16; 64]) {
        self.q = *q;
    }
    fn transform(&mut self, coeffs: &[i16], out: &mut [u8; 64]) {
        let mut freq = [0f64; 64];
        for i in 0..64 {
            freq[i] = f64::from(coeffs[i]) * f64::from(self.q[i]);
        }
        let mut spatial = [0f64; 64];
        reference_inverse_dct(&freq, &mut spatial);
        for i in 0..64 {
            out[i] = (crate::dct::descale(spatial[i]) + 128).clamp(0, 255) as u8;
        }
    }
}

/// Naive byte-at-a-time restart-segment splitter: walks the entropy
/// bytes one by one, treating `FF 00` as stuffing and `FF D0..=D7` as a
/// segment boundary, stopping at any other marker. The oracle the
/// word-at-a-time [`crate::bitio::split_restart_segments`] is tested
/// against.
pub(crate) fn reference_split_segments(data: &[u8]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut start = 0usize;
    let mut i = 0usize;
    while i < data.len() {
        if data[i] != 0xFF {
            i += 1;
            continue;
        }
        match data.get(i + 1) {
            Some(0x00) => i += 2, // stuffed 0xFF is entropy data
            Some(&m) if (RST0..=RST0 + 7).contains(&m) => {
                ranges.push((start, i));
                i += 2;
                start = i;
            }
            Some(_) => {
                // A real (non-restart) marker terminates the entropy data.
                ranges.push((start, i));
                return ranges;
            }
            None => break, // lone trailing 0xFF belongs to the last segment
        }
    }
    ranges.push((start, data.len()));
    ranges
}

/// Decodes a stream to coefficients through the reference entropy stack:
/// per-byte reader + canonical Huffman decoder, driving the *shared* scan
/// logic in `dentropy`. Mirrors `decoder::decode_coeffs` segment by
/// segment, including per-restart-segment state resets.
pub(crate) fn reference_decode_coeffs(data: &[u8]) -> Result<DecodedCoeffs> {
    let mut reader = SegmentReader::new(data);
    match reader.next_segment()? {
        Segment::Soi => {}
        _ => return Err(Error::NotJpeg),
    }
    let mut qtables: [Option<[u16; 64]>; 4] = [None, None, None, None];
    let mut dc_tables: [Option<ReferenceHuffDecoder>; 4] = [None, None, None, None];
    let mut ac_tables: [Option<ReferenceHuffDecoder>; 4] = [None, None, None, None];
    let mut frame: Option<FrameInfo> = None;
    let mut coeffs: Option<CoeffPlanes> = None;
    let mut scans: Vec<ScanInfo> = Vec::new();
    let mut saw_eoi = false;
    let mut restart_interval: u16 = 0;

    loop {
        let seg = match reader.next_segment() {
            Ok(seg) => seg,
            Err(Error::UnexpectedEof) if frame.is_some() => break,
            Err(e) => return Err(e),
        };
        match seg {
            Segment::Soi => return Err(Error::CorruptData("nested SOI".into())),
            Segment::Eoi => {
                saw_eoi = true;
                break;
            }
            Segment::Marker { marker: m, payload } => match m {
                DQT => {
                    for (id, table) in marker::parse_dqt(payload)? {
                        qtables[id as usize] = Some(table);
                    }
                }
                DHT => {
                    for (class, id, table) in marker::parse_dht(payload)? {
                        let dec = ReferenceHuffDecoder::from_table(&table)?;
                        if class == 0 {
                            dc_tables[id as usize] = Some(dec);
                        } else {
                            ac_tables[id as usize] = Some(dec);
                        }
                    }
                }
                SOF0 | SOF1 | SOF2 => {
                    if frame.is_some() {
                        return Err(Error::CorruptData("multiple SOF".into()));
                    }
                    let f = marker::parse_sof(payload, m == SOF2)?;
                    coeffs = Some(CoeffPlanes::new(&f));
                    frame = Some(f);
                }
                DRI => {
                    if payload.len() != 2 {
                        return Err(Error::BadSegmentLength { marker: DRI });
                    }
                    restart_interval = u16::from_be_bytes([payload[0], payload[1]]);
                }
                _ => {}
            },
            Segment::Sos { payload, entropy_start } => {
                let f = frame
                    .as_ref()
                    .ok_or_else(|| Error::BadScan("SOS before SOF".into()))?;
                let scan = marker::parse_sos(payload, f)?;
                let (_, entropy_end) = reader.skip_entropy();
                let entropy = &data[entropy_start..entropy_end];
                let tables = DecodeTables { dc: &dc_tables, ac: &ac_tables };
                let planes = coeffs.as_mut().expect("coeffs with frame");
                let total = mcu_units(f, &scan);
                let interval = u32::from(restart_interval);
                if interval == 0 || interval >= total {
                    let mut bits = ReferenceBitReader::new(entropy);
                    decode_scan_range(f, planes, &scan, &tables, &mut bits, 0..total)?;
                } else {
                    let ranges = reference_split_segments(entropy);
                    let expected = total.div_ceil(interval) as usize;
                    let nseg = ranges.len().min(expected);
                    for (seg, &(s, e)) in ranges[..nseg].iter().enumerate() {
                        let start = seg as u32 * interval;
                        let units = start..(start + interval).min(total);
                        let mut bits = ReferenceBitReader::new(&entropy[s..e]);
                        decode_scan_range(f, planes, &scan, &tables, &mut bits, units)?;
                    }
                }
                scans.push(scan);
            }
        }
    }

    let frame = frame.ok_or(Error::UnsupportedFrame("no SOF in stream".into()))?;
    let coeffs = coeffs.expect("coeffs allocated with frame");
    Ok(DecodedCoeffs { frame, coeffs, qtables, scans, saw_eoi })
}

/// Full reference decode: reference entropy stack + basis-matrix IDCT.
/// The bit-exactness suite asserts `decoder::decode` equals this byte for
/// byte on every stream and truncation level it generates.
pub(crate) fn reference_decode(data: &[u8]) -> Result<ImageBuf> {
    let d = reference_decode_coeffs(data)?;
    let planes = reconstruct_planes_with(
        &d.coeffs,
        &d.frame,
        &d.qtables,
        &mut Vec::new(),
        &mut ReferenceBlockIdct::default(),
    )?;
    planes_to_image(&planes, &d.frame)
}
