//! Entropy decoding for baseline and progressive scans, mirroring
//! `entropy.rs` (encode side) and libjpeg's `jdhuff.c`/`jdphuff.c`.

use crate::bitio::{extend, BitSource};
use crate::consts::ZIGZAG;
use crate::error::{Error, Result};
use crate::frame::{BlockStore, FrameInfo, ScanInfo};
use crate::huffman::{HuffDecoder, SymbolDecoder};
use std::ops::Range;

/// Huffman decoder tables available to a scan.
///
/// Generic over the symbol-decoder type `D` (defaulting to the production
/// two-level [`HuffDecoder`]) so the bit-exactness suite can run the
/// identical scan logic over the retained canonical decoder.
pub struct DecodeTables<'a, D = HuffDecoder> {
    /// DC decoders by table id.
    pub dc: &'a [Option<D>; 4],
    /// AC decoders by table id.
    pub ac: &'a [Option<D>; 4],
}

impl<D> DecodeTables<'_, D> {
    fn dc_table(&self, id: u8) -> Result<&D> {
        self.dc
            .get(id as usize)
            .and_then(Option::as_ref)
            .ok_or_else(|| Error::BadHuffman(format!("missing DC table {id}")))
    }
    fn ac_table(&self, id: u8) -> Result<&D> {
        self.ac
            .get(id as usize)
            .and_then(Option::as_ref)
            .ok_or_else(|| Error::BadHuffman(format!("missing AC table {id}")))
    }
}

// pcr-lint: allow(no-panic-in-hot-path) for-next-item — comp_index is
// validated against frame.components when the scan header is parsed.
/// Number of restart-interval units in a scan: MCUs for an interleaved
/// scan, blocks for a non-interleaved one (T.81 E.1.4 — in a
/// non-interleaved scan the MCU is a single block). Restart intervals
/// and segment-parallel decode both count in these units.
pub fn mcu_units(frame: &FrameInfo, scan: &ScanInfo) -> u32 {
    if scan.components.len() == 1 {
        let c = &frame.components[scan.components[0].comp_index];
        c.blocks_w * c.blocks_h
    } else {
        frame.mcus_x * frame.mcus_y
    }
}

/// Decodes one scan's entropy data from `r` into `coeffs`.
///
/// Returns normally at the end of the scan's MCUs; a truncated stream decodes
/// zero bits for the remainder (graceful degradation, which the PCR partial
/// read path relies on between scan-group boundaries).
pub fn decode_scan<B: BlockStore, D: SymbolDecoder, R: BitSource>(
    frame: &FrameInfo,
    coeffs: &mut B,
    scan: &ScanInfo,
    tables: &DecodeTables<'_, D>,
    r: &mut R,
) -> Result<()> {
    decode_scan_range(frame, coeffs, scan, tables, r, 0..mcu_units(frame, scan))
}

/// Decodes the MCU-unit range `units` of a scan from `r` into `coeffs` —
/// one restart segment's worth when the stream carries restart markers.
///
/// Decoder state (DC predictors, EOB run) starts fresh, exactly the
/// reset a restart marker demands, so decoding a whole scan equals
/// decoding its segments in sequence — or in parallel, since disjoint
/// unit ranges of a non-interleaved scan touch disjoint blocks.
pub fn decode_scan_range<B: BlockStore, D: SymbolDecoder, R: BitSource>(
    frame: &FrameInfo,
    coeffs: &mut B,
    scan: &ScanInfo,
    tables: &DecodeTables<'_, D>,
    r: &mut R,
    units: Range<u32>,
) -> Result<()> {
    scan.validate(frame)?;
    if !frame.progressive {
        return decode_sequential(frame, coeffs, scan, tables, r, units);
    }
    if scan.is_dc() {
        if scan.is_refinement() {
            decode_dc_refine(frame, coeffs, scan, r, units)
        } else {
            decode_dc_first(frame, coeffs, scan, tables, r, units)
        }
    } else if scan.is_refinement() {
        decode_ac_refine(frame, coeffs, scan, tables, r, units)
    } else {
        decode_ac_first(frame, coeffs, scan, tables, r, units)
    }
}

// pcr-lint: allow(no-panic-in-hot-path) for-next-item — scan.validate
// checks every comp_index; block coordinates stay inside the component's
// blocks_w x blocks_h grid by construction of the loops.
fn for_each_block(
    frame: &FrameInfo,
    scan: &ScanInfo,
    units: Range<u32>,
    mut f: impl FnMut(usize, u32, u32) -> Result<()>,
) -> Result<()> {
    if scan.components.len() == 1 {
        let c = &frame.components[scan.components[0].comp_index];
        let bw = c.blocks_w;
        let mut row = units.start / bw;
        let mut col = units.start % bw;
        for _ in units {
            f(0, row, col)?;
            col += 1;
            if col == bw {
                col = 0;
                row += 1;
            }
        }
        return Ok(());
    }
    for m in units {
        let my = m / frame.mcus_x;
        let mx = m % frame.mcus_x;
        for (slot, sc) in scan.components.iter().enumerate() {
            let c = &frame.components[sc.comp_index];
            for by in 0..u32::from(c.v) {
                for bx in 0..u32::from(c.h) {
                    f(slot, my * u32::from(c.v) + by, mx * u32::from(c.h) + bx)?;
                }
            }
        }
    }
    Ok(())
}

// pcr-lint: allow(no-panic-in-hot-path) for-next-item — slot indexes the
// per-scan vectors sized from scan.components; k is guarded <= 63 before
// ZIGZAG[k]; block_mut returns an 8x8 block so the try_into cannot fail.
fn decode_sequential<B: BlockStore, D: SymbolDecoder, R: BitSource>(
    frame: &FrameInfo,
    coeffs: &mut B,
    scan: &ScanInfo,
    tables: &DecodeTables<'_, D>,
    r: &mut R,
    units: Range<u32>,
) -> Result<()> {
    let mut preds = vec![0i32; scan.components.len()];
    // Resolve Huffman tables once per scan, not once per block.
    let comp_tables: Vec<(&D, &D)> = scan
        .components
        .iter()
        .map(|sc| Ok((tables.dc_table(sc.dc_table)?, tables.ac_table(sc.ac_table)?)))
        .collect::<Result<_>>()?;
    for_each_block(frame, scan, units, |slot, row, col| {
        let sc = scan.components[slot];
        let (dctbl, actbl) = comp_tables[slot];
        // Fused symbol + magnitude reads: one peek serves both.
        let (s_sym, dc_bits) = dctbl.decode_then_bits(r, |s| u32::from(s.min(15)))?;
        let s = u32::from(s_sym);
        let diff = if s > 0 {
            if s > 15 {
                return Err(Error::CorruptData("DC size > 15".into()));
            }
            extend(dc_bits, s)
        } else {
            0
        };
        preds[slot] += diff;
        let block: &mut [i16; 64] =
            coeffs.block_mut(frame, sc.comp_index, row, col).try_into().expect("8x8 block");
        block[0] = preds[slot] as i16;
        let mut k = 1usize;
        // Two coefficients per probe where possible: `decode_pair` pulls a
        // second symbol+magnitude step from the same 32-bit window iff
        // `more` proves the loop will immediately need it.
        let mut pending: Option<(u8, u32)> = None;
        while k < 64 {
            let (rs, bits) = match pending.take() {
                Some(step) => step,
                None => {
                    let more = |rs: u8| {
                        let run = usize::from(rs >> 4);
                        let size = rs & 0x0F;
                        if size != 0 {
                            k + run + 1 < 64
                        } else {
                            run == 15 && k + 16 < 64
                        }
                    };
                    let (first, second) =
                        actbl.decode_pair(r, |rs| u32::from(rs & 0x0F), more)?;
                    pending = second;
                    first
                }
            };
            let run = usize::from(rs >> 4);
            let size = u32::from(rs & 0x0F);
            if size == 0 {
                if run == 15 {
                    k += 16; // ZRL
                    continue;
                }
                break; // EOB
            }
            k += run;
            if k > 63 {
                return Err(Error::CorruptData("AC run past block end".into()));
            }
            block[ZIGZAG[k]] = extend(bits, size) as i16;
            k += 1;
        }
        debug_assert!(pending.is_none(), "speculative step without a consumer");
        Ok(())
    })
}

// pcr-lint: allow(no-panic-in-hot-path) for-next-item — slot indexes the
// per-scan vectors sized from scan.components; DC writes touch index 0 only.
fn decode_dc_first<B: BlockStore, D: SymbolDecoder, R: BitSource>(
    frame: &FrameInfo,
    coeffs: &mut B,
    scan: &ScanInfo,
    tables: &DecodeTables<'_, D>,
    r: &mut R,
    units: Range<u32>,
) -> Result<()> {
    let al = u32::from(scan.al);
    let mut preds = vec![0i32; scan.components.len()];
    let comp_tables: Vec<&D> = scan
        .components
        .iter()
        .map(|sc| tables.dc_table(sc.dc_table))
        .collect::<Result<_>>()?;
    for_each_block(frame, scan, units, |slot, row, col| {
        let sc = scan.components[slot];
        let (s_sym, dc_bits) =
            comp_tables[slot].decode_then_bits(r, |s| u32::from(s.min(15)))?;
        let s = u32::from(s_sym);
        let diff = if s > 0 {
            if s > 15 {
                return Err(Error::CorruptData("DC size > 15".into()));
            }
            extend(dc_bits, s)
        } else {
            0
        };
        preds[slot] += diff;
        coeffs.block_mut(frame, sc.comp_index, row, col)[0] = (preds[slot] << al) as i16;
        Ok(())
    })
}

// pcr-lint: allow(no-panic-in-hot-path) for-next-item — slot < 
// scan.components.len() by for_each_block; DC writes touch index 0 only.
fn decode_dc_refine<B: BlockStore, R: BitSource>(
    frame: &FrameInfo,
    coeffs: &mut B,
    scan: &ScanInfo,
    r: &mut R,
    units: Range<u32>,
) -> Result<()> {
    let p1 = 1i16 << scan.al;
    for_each_block(frame, scan, units, |slot, row, col| {
        let sc = scan.components[slot];
        if r.get_bit()? != 0 {
            let block = coeffs.block_mut(frame, sc.comp_index, row, col);
            block[0] |= p1;
        }
        Ok(())
    })
}

// pcr-lint: allow(no-panic-in-hot-path) for-next-item — AC scans have
// exactly one component (scan.validate); k is guarded <= se <= 63 before
// ZIGZAG[k]; block_mut returns an 8x8 block so the try_into cannot fail.
fn decode_ac_first<B: BlockStore, D: SymbolDecoder, R: BitSource>(
    frame: &FrameInfo,
    coeffs: &mut B,
    scan: &ScanInfo,
    tables: &DecodeTables<'_, D>,
    r: &mut R,
    units: Range<u32>,
) -> Result<()> {
    let sc = scan.components[0];
    let actbl = tables.ac_table(sc.ac_table)?;
    let al = u32::from(scan.al);
    let se = scan.se as usize;
    // Fused read sizing: magnitude bits for a coefficient symbol, EOB
    // run-length bits otherwise (0 for ZRL).
    let size_of = |rs: u8| {
        let size = u32::from(rs & 0x0F);
        let run = u32::from(rs >> 4);
        size + (u32::from(size == 0) & u32::from(run != 15)) * run
    };
    let mut eobrun = 0u32;
    for_each_block(frame, scan, units, |_slot, row, col| {
        if eobrun > 0 {
            eobrun -= 1;
            return Ok(());
        }
        let block: &mut [i16; 64] =
            coeffs.block_mut(frame, sc.comp_index, row, col).try_into().expect("8x8 block");
        let mut k = scan.ss as usize;
        // As in `decode_sequential`: two symbol+bits steps per 32-bit
        // window when `more` proves the second will be needed.
        let mut pending: Option<(u8, u32)> = None;
        while k <= se {
            let (rs, bits) = match pending.take() {
                Some(step) => step,
                None => {
                    let more = |rs: u8| {
                        let run = usize::from(rs >> 4);
                        let size = rs & 0x0F;
                        if size != 0 {
                            k + run < se
                        } else {
                            run == 15 && k + 16 <= se
                        }
                    };
                    let (first, second) = actbl.decode_pair(r, size_of, more)?;
                    pending = second;
                    first
                }
            };
            let run = usize::from(rs >> 4);
            let size = u32::from(rs & 0x0F);
            if size != 0 {
                k += run;
                if k > se {
                    return Err(Error::CorruptData("AC run past band end".into()));
                }
                block[ZIGZAG[k]] = (extend(bits, size) << al) as i16;
                k += 1;
            } else if run == 15 {
                k += 16;
            } else {
                eobrun = (1 << run) + bits;
                eobrun -= 1; // this block ends the run
                break;
            }
        }
        debug_assert!(pending.is_none(), "speculative step without a consumer");
        Ok(())
    })
}

/// Bit mask of positions `0..n` (saturating: `n >= 64` selects all).
#[inline]
fn low_mask(n: usize) -> u64 {
    if n >= 64 {
        !0
    } else {
        (1u64 << n) - 1
    }
}

// pcr-lint: allow(no-panic-in-hot-path) for-next-item — pos =
// trailing_zeros of a nonzero u64 is < 64, and ZIGZAG is a 64-entry
// permutation, so every index is in bounds.
/// Emits one correction bit (T.81 G.1.2.3) for every position set in
/// `corr` (ascending zigzag order), batching the bit reads through 16-bit
/// peeks: one refill check and one consume per batch instead of one per
/// bit.
#[inline]
fn apply_corrections<R: BitSource>(
    r: &mut R,
    block: &mut [i16; 64],
    mut corr: u64,
    p1: i32,
    m1: i32,
) -> Result<()> {
    while corr != 0 {
        let batch = corr.count_ones().min(16);
        let win = r.peek_bits(16)?;
        for i in 0..batch {
            let pos = corr.trailing_zeros() as usize;
            corr &= corr - 1;
            let bit = ((win >> (15 - i)) & 1) as i32;
            let idx = ZIGZAG[pos];
            let cur = i32::from(block[idx]);
            // Branch-free update: the correction bit is random data, and
            // a conditional store here would mispredict half the time.
            let apply = bit & i32::from(cur & p1 == 0);
            let delta = if cur >= 0 { p1 } else { m1 }; // cmov
            block[idx] = (cur + apply * delta) as i16;
        }
        r.consume(batch)?;
    }
    Ok(())
}

// pcr-lint: allow(no-panic-in-hot-path) for-next-item — AC scans have one
// component; ZIGZAG indices come from band positions k/target <= se <= 63
// (target > se errors first); block_mut's 8x8 block makes try_into total.
fn decode_ac_refine<B: BlockStore, D: SymbolDecoder, R: BitSource>(
    frame: &FrameInfo,
    coeffs: &mut B,
    scan: &ScanInfo,
    tables: &DecodeTables<'_, D>,
    r: &mut R,
    units: Range<u32>,
) -> Result<()> {
    let sc = scan.components[0];
    let actbl = tables.ac_table(sc.ac_table)?;
    let p1 = 1i32 << scan.al;
    let m1 = -(1i32 << scan.al);
    let ss = scan.ss as usize;
    let se = scan.se as usize;
    let mut eobrun = 0u32;
    for_each_block(frame, scan, units, |_slot, row, col| {
        let block: &mut [i16; 64] =
            coeffs.block_mut(frame, sc.comp_index, row, col).try_into().expect("8x8 block");
        // Bitmap of already-nonzero band positions (bit k = zigzag index
        // k), built once per block from the natural-order SIMD nonzero
        // mask (8 wide compares) permuted through ZIGZAG — cheaper than
        // 64 scattered 16-bit loads. Insertions only ever happen behind
        // the advancing cursor, so the snapshot stays valid for every
        // lookahead this block performs.
        let natural = crate::simd::nonzero_mask64(block);
        let mut nz = 0u64;
        for (k, &z) in ZIGZAG.iter().enumerate().take(se + 1).skip(ss) {
            nz |= ((natural >> z) & 1) << k;
        }
        let mut k = ss;
        if eobrun == 0 {
            while k <= se {
                // Fused: the sign bit (size == 1) or EOB run-length bits
                // (size == 0, run < 15) ride the symbol's peek.
                let (rs, bits) = actbl.decode_then_bits(r, |rs| {
                    // Branch-free: 1 for a coefficient's sign bit, the
                    // run length for an EOB symbol, 0 otherwise.
                    let size = u32::from(rs & 0x0F);
                    let run = u32::from(rs >> 4);
                    u32::from(size == 1)
                        + (u32::from(size == 0) & u32::from(run != 15)) * run
                })?;
                let run = usize::from(rs >> 4);
                let size = rs & 0x0F;
                let mut newval = 0i32;
                if size != 0 {
                    if size != 1 {
                        return Err(Error::CorruptData(
                            "refinement coefficient size must be 1".into(),
                        ));
                    }
                    newval = if bits != 0 { p1 } else { m1 };
                } else if run != 15 {
                    eobrun = (1 << run) + bits;
                    break; // remaining handled by EOB logic below
                }
                // The cursor stops at the (run+1)-th still-zero position
                // (or the band end): find it with bit math instead of a
                // per-position walk.
                let band = low_mask(se + 1) & !low_mask(k);
                let mut z = !nz & band;
                for _ in 0..run {
                    z &= z.wrapping_sub(1);
                }
                let target = if z == 0 { se + 1 } else { z.trailing_zeros() as usize };
                // Existing nonzero coefficients passed on the way receive
                // one correction bit each, in zigzag order.
                apply_corrections(r, block, nz & band & low_mask(target), p1, m1)?;
                if newval != 0 {
                    if target > se {
                        return Err(Error::CorruptData("refine run past band end".into()));
                    }
                    block[ZIGZAG[target]] = newval as i16;
                }
                k = target + 1;
            }
        }
        if eobrun > 0 {
            // Append correction bits to every remaining nonzero
            // coefficient of the block.
            if k <= se {
                apply_corrections(r, block, nz & low_mask(se + 1) & !low_mask(k), p1, m1)?;
            }
            eobrun -= 1;
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitio::{BitReader, BitWriter};
    use crate::entropy::{encode_scan, StatsSink, WriteSink};
    use crate::frame::{CoeffPlanes, ScanComponent, Subsampling};
    use crate::huffman::{gen_optimal_table, HuffDecoder, HuffEncoder};

    /// Runs encode(stats)->tables->encode(write)->decode for one scan and
    /// returns the decoded coefficient planes.
    fn roundtrip_scan(
        frame: &FrameInfo,
        coeffs: &CoeffPlanes,
        scan: &ScanInfo,
        into: &mut CoeffPlanes,
    ) {
        let mut stats = StatsSink::new();
        encode_scan(frame, coeffs, scan, &mut stats).unwrap();
        let mut dc_enc: [Option<HuffEncoder>; 4] = [None, None, None, None];
        let mut ac_enc: [Option<HuffEncoder>; 4] = [None, None, None, None];
        let mut dc_dec: [Option<HuffDecoder>; 4] = [None, None, None, None];
        let mut ac_dec: [Option<HuffDecoder>; 4] = [None, None, None, None];
        for t in 0..4u8 {
            if stats.dc_used(t) {
                let tbl = gen_optimal_table(&stats.dc_counts[t as usize]).unwrap();
                dc_enc[t as usize] = Some(HuffEncoder::from_table(&tbl).unwrap());
                dc_dec[t as usize] = Some(HuffDecoder::from_table(&tbl).unwrap());
            }
            if stats.ac_used(t) {
                let tbl = gen_optimal_table(&stats.ac_counts[t as usize]).unwrap();
                ac_enc[t as usize] = Some(HuffEncoder::from_table(&tbl).unwrap());
                ac_dec[t as usize] = Some(HuffDecoder::from_table(&tbl).unwrap());
            }
        }
        let mut writer = BitWriter::new();
        {
            let mut sink = WriteSink { writer: &mut writer, dc: dc_enc, ac: ac_enc };
            encode_scan(frame, coeffs, scan, &mut sink).unwrap();
        }
        let bytes = writer.finish();
        let mut reader = BitReader::new(&bytes);
        let tables = DecodeTables { dc: &dc_dec, ac: &ac_dec };
        decode_scan(frame, into, scan, &tables, &mut reader).unwrap();
    }

    fn filled_frame(progressive: bool, w: u32, h: u32) -> (FrameInfo, CoeffPlanes) {
        let frame = FrameInfo::for_encode(w, h, 1, Subsampling::S444, progressive).unwrap();
        let mut coeffs = CoeffPlanes::new(&frame);
        let c = frame.components[0].clone();
        let mut seed = 0x12345u32;
        for row in 0..c.alloc_h {
            for col in 0..c.alloc_w {
                let b = coeffs.block_mut(&frame, 0, row, col);
                for (i, v) in b.iter_mut().enumerate() {
                    seed = seed.wrapping_mul(1103515245).wrapping_add(12345);
                    let r = (seed >> 16) as i32 % 32;
                    *v = match i {
                        0 => (r * 8 - 128) as i16,
                        _ if i < 6 => (r - 16).clamp(-30, 30) as i16,
                        _ if i < 20 && r % 3 == 0 => ((r % 7) - 3) as i16,
                        _ if r % 13 == 0 => 1,
                        _ => 0,
                    };
                }
            }
        }
        (frame, coeffs)
    }

    #[test]
    fn sequential_roundtrip_exact() {
        let (frame, coeffs) = filled_frame(false, 48, 32);
        let scan = ScanInfo {
            components: vec![ScanComponent { comp_index: 0, dc_table: 0, ac_table: 0 }],
            ss: 0,
            se: 63,
            ah: 0,
            al: 0,
        };
        let mut out = CoeffPlanes::new(&frame);
        roundtrip_scan(&frame, &coeffs, &scan, &mut out);
        assert_eq!(out, coeffs);
    }

    #[test]
    fn progressive_full_script_roundtrip_exact() {
        let (frame, coeffs) = filled_frame(true, 40, 40);
        let comp = |_i: usize| ScanComponent { comp_index: 0, dc_table: 0, ac_table: 0 };
        // DC first (Al=1), AC 1..63 first (Al=2), AC refine (Al=1), AC refine
        // (Al=0), DC refine (Al=0): full precision recovery.
        let scans = [
            ScanInfo { components: vec![comp(0)], ss: 0, se: 0, ah: 0, al: 1 },
            ScanInfo { components: vec![comp(0)], ss: 1, se: 63, ah: 0, al: 2 },
            ScanInfo { components: vec![comp(0)], ss: 1, se: 63, ah: 2, al: 1 },
            ScanInfo { components: vec![comp(0)], ss: 1, se: 63, ah: 1, al: 0 },
            ScanInfo { components: vec![comp(0)], ss: 0, se: 0, ah: 1, al: 0 },
        ];
        let mut out = CoeffPlanes::new(&frame);
        for scan in &scans {
            roundtrip_scan(&frame, &coeffs, scan, &mut out);
        }
        assert_eq!(out, coeffs);
    }

    #[test]
    fn progressive_partial_scans_approximate_dc() {
        let (frame, coeffs) = filled_frame(true, 24, 24);
        let comp = ScanComponent { comp_index: 0, dc_table: 0, ac_table: 0 };
        let dc_first = ScanInfo { components: vec![comp], ss: 0, se: 0, ah: 0, al: 1 };
        let mut out = CoeffPlanes::new(&frame);
        roundtrip_scan(&frame, &coeffs, &dc_first, &mut out);
        // After DC-first only: every DC matches to within the Al=1 precision,
        // all AC coefficients are still zero.
        let c = frame.components[0].clone();
        for row in 0..c.alloc_h {
            for col in 0..c.alloc_w {
                let got = out.block(&frame, 0, row, col);
                let want = coeffs.block(&frame, 0, row, col);
                assert_eq!(i32::from(got[0]) >> 1, i32::from(want[0]) >> 1);
                assert!(got[1..].iter().all(|&v| v == 0));
            }
        }
    }

    #[test]
    fn spectral_bands_compose() {
        let (frame, coeffs) = filled_frame(true, 32, 16);
        let comp = ScanComponent { comp_index: 0, dc_table: 0, ac_table: 0 };
        let scans = [
            ScanInfo { components: vec![comp], ss: 0, se: 0, ah: 0, al: 0 },
            ScanInfo { components: vec![comp], ss: 1, se: 5, ah: 0, al: 0 },
            ScanInfo { components: vec![comp], ss: 6, se: 63, ah: 0, al: 0 },
        ];
        let mut out = CoeffPlanes::new(&frame);
        for scan in &scans {
            roundtrip_scan(&frame, &coeffs, scan, &mut out);
        }
        assert_eq!(out, coeffs);
    }

    #[test]
    fn interleaved_color_sequential_roundtrip() {
        let frame = FrameInfo::for_encode(40, 24, 3, Subsampling::S420, false).unwrap();
        let mut coeffs = CoeffPlanes::new(&frame);
        let mut seed = 7u32;
        for ci in 0..3 {
            let c = frame.components[ci].clone();
            for row in 0..c.alloc_h {
                for col in 0..c.alloc_w {
                    let b = coeffs.block_mut(&frame, ci, row, col);
                    for (i, v) in b.iter_mut().enumerate().take(10) {
                        seed = seed.wrapping_mul(48271);
                        *v = ((seed >> 20) as i32 % 19 - 9 + i as i32 % 3) as i16;
                    }
                }
            }
        }
        let scan = ScanInfo {
            components: (0..3)
                .map(|i| ScanComponent {
                    comp_index: i,
                    dc_table: u8::from(i > 0),
                    ac_table: u8::from(i > 0),
                })
                .collect(),
            ss: 0,
            se: 63,
            ah: 0,
            al: 0,
        };
        let mut out = CoeffPlanes::new(&frame);
        roundtrip_scan(&frame, &coeffs, &scan, &mut out);
        assert_eq!(out, coeffs);
    }
}
