//! Entropy decoding for baseline and progressive scans, mirroring
//! `entropy.rs` (encode side) and libjpeg's `jdhuff.c`/`jdphuff.c`.

use crate::bitio::{extend, BitReader};
use crate::consts::ZIGZAG;
use crate::error::{Error, Result};
use crate::frame::{CoeffPlanes, FrameInfo, ScanInfo};
use crate::huffman::HuffDecoder;

/// Huffman decoder tables available to a scan.
pub struct DecodeTables<'a> {
    /// DC decoders by table id.
    pub dc: &'a [Option<HuffDecoder>; 4],
    /// AC decoders by table id.
    pub ac: &'a [Option<HuffDecoder>; 4],
}

impl DecodeTables<'_> {
    fn dc_table(&self, id: u8) -> Result<&HuffDecoder> {
        self.dc
            .get(id as usize)
            .and_then(Option::as_ref)
            .ok_or_else(|| Error::BadHuffman(format!("missing DC table {id}")))
    }
    fn ac_table(&self, id: u8) -> Result<&HuffDecoder> {
        self.ac
            .get(id as usize)
            .and_then(Option::as_ref)
            .ok_or_else(|| Error::BadHuffman(format!("missing AC table {id}")))
    }
}

/// Decodes one scan's entropy data from `r` into `coeffs`.
///
/// Returns normally at the end of the scan's MCUs; a truncated stream decodes
/// zero bits for the remainder (graceful degradation, which the PCR partial
/// read path relies on between scan-group boundaries).
pub fn decode_scan(
    frame: &FrameInfo,
    coeffs: &mut CoeffPlanes,
    scan: &ScanInfo,
    tables: &DecodeTables<'_>,
    r: &mut BitReader<'_>,
) -> Result<()> {
    scan.validate(frame)?;
    if !frame.progressive {
        return decode_sequential(frame, coeffs, scan, tables, r);
    }
    if scan.is_dc() {
        if scan.is_refinement() {
            decode_dc_refine(frame, coeffs, scan, r)
        } else {
            decode_dc_first(frame, coeffs, scan, tables, r)
        }
    } else if scan.is_refinement() {
        decode_ac_refine(frame, coeffs, scan, tables, r)
    } else {
        decode_ac_first(frame, coeffs, scan, tables, r)
    }
}

fn for_each_block(
    frame: &FrameInfo,
    scan: &ScanInfo,
    mut f: impl FnMut(usize, u32, u32) -> Result<()>,
) -> Result<()> {
    if scan.components.len() == 1 {
        let c = &frame.components[scan.components[0].comp_index];
        for row in 0..c.blocks_h {
            for col in 0..c.blocks_w {
                f(0, row, col)?;
            }
        }
        return Ok(());
    }
    for my in 0..frame.mcus_y {
        for mx in 0..frame.mcus_x {
            for (slot, sc) in scan.components.iter().enumerate() {
                let c = &frame.components[sc.comp_index];
                for by in 0..u32::from(c.v) {
                    for bx in 0..u32::from(c.h) {
                        f(slot, my * u32::from(c.v) + by, mx * u32::from(c.h) + bx)?;
                    }
                }
            }
        }
    }
    Ok(())
}

fn decode_sequential(
    frame: &FrameInfo,
    coeffs: &mut CoeffPlanes,
    scan: &ScanInfo,
    tables: &DecodeTables<'_>,
    r: &mut BitReader<'_>,
) -> Result<()> {
    let mut preds = vec![0i32; scan.components.len()];
    for_each_block(frame, scan, |slot, row, col| {
        let sc = scan.components[slot];
        let dctbl = tables.dc_table(sc.dc_table)?;
        let actbl = tables.ac_table(sc.ac_table)?;
        let s = u32::from(dctbl.decode(r)?);
        let diff = if s > 0 {
            if s > 15 {
                return Err(Error::CorruptData("DC size > 15".into()));
            }
            extend(r.get_bits(s)?, s)
        } else {
            0
        };
        preds[slot] += diff;
        let block = coeffs.block_mut(frame, sc.comp_index, row, col);
        block[0] = preds[slot] as i16;
        let mut k = 1usize;
        while k < 64 {
            let rs = actbl.decode(r)?;
            let run = usize::from(rs >> 4);
            let size = u32::from(rs & 0x0F);
            if size == 0 {
                if run == 15 {
                    k += 16; // ZRL
                    continue;
                }
                break; // EOB
            }
            k += run;
            if k > 63 {
                return Err(Error::CorruptData("AC run past block end".into()));
            }
            let v = extend(r.get_bits(size)?, size);
            block[ZIGZAG[k]] = v as i16;
            k += 1;
        }
        Ok(())
    })
}

fn decode_dc_first(
    frame: &FrameInfo,
    coeffs: &mut CoeffPlanes,
    scan: &ScanInfo,
    tables: &DecodeTables<'_>,
    r: &mut BitReader<'_>,
) -> Result<()> {
    let al = u32::from(scan.al);
    let mut preds = vec![0i32; scan.components.len()];
    for_each_block(frame, scan, |slot, row, col| {
        let sc = scan.components[slot];
        let dctbl = tables.dc_table(sc.dc_table)?;
        let s = u32::from(dctbl.decode(r)?);
        let diff = if s > 0 {
            if s > 15 {
                return Err(Error::CorruptData("DC size > 15".into()));
            }
            extend(r.get_bits(s)?, s)
        } else {
            0
        };
        preds[slot] += diff;
        coeffs.block_mut(frame, sc.comp_index, row, col)[0] = (preds[slot] << al) as i16;
        Ok(())
    })
}

fn decode_dc_refine(
    frame: &FrameInfo,
    coeffs: &mut CoeffPlanes,
    scan: &ScanInfo,
    r: &mut BitReader<'_>,
) -> Result<()> {
    let p1 = 1i16 << scan.al;
    for_each_block(frame, scan, |slot, row, col| {
        let sc = scan.components[slot];
        if r.get_bit()? != 0 {
            let block = coeffs.block_mut(frame, sc.comp_index, row, col);
            block[0] |= p1;
        }
        Ok(())
    })
}

fn decode_ac_first(
    frame: &FrameInfo,
    coeffs: &mut CoeffPlanes,
    scan: &ScanInfo,
    tables: &DecodeTables<'_>,
    r: &mut BitReader<'_>,
) -> Result<()> {
    let sc = scan.components[0];
    let actbl = tables.ac_table(sc.ac_table)?;
    let al = u32::from(scan.al);
    let mut eobrun = 0u32;
    for_each_block(frame, scan, |_slot, row, col| {
        if eobrun > 0 {
            eobrun -= 1;
            return Ok(());
        }
        let block = coeffs.block_mut(frame, sc.comp_index, row, col);
        let mut k = scan.ss as usize;
        while k <= scan.se as usize {
            let rs = actbl.decode(r)?;
            let run = usize::from(rs >> 4);
            let size = u32::from(rs & 0x0F);
            if size != 0 {
                k += run;
                if k > scan.se as usize {
                    return Err(Error::CorruptData("AC run past band end".into()));
                }
                let v = extend(r.get_bits(size)?, size);
                block[ZIGZAG[k]] = (v << al) as i16;
                k += 1;
            } else if run == 15 {
                k += 16;
            } else {
                eobrun = 1 << run;
                if run > 0 {
                    eobrun += r.get_bits(run as u32)?;
                }
                eobrun -= 1; // this block ends the run
                break;
            }
        }
        Ok(())
    })
}

fn decode_ac_refine(
    frame: &FrameInfo,
    coeffs: &mut CoeffPlanes,
    scan: &ScanInfo,
    tables: &DecodeTables<'_>,
    r: &mut BitReader<'_>,
) -> Result<()> {
    let sc = scan.components[0];
    let actbl = tables.ac_table(sc.ac_table)?;
    let p1 = 1i32 << scan.al;
    let m1 = -(1i32 << scan.al);
    let mut eobrun = 0u32;
    for_each_block(frame, scan, |_slot, row, col| {
        let block = coeffs.block_mut(frame, sc.comp_index, row, col);
        let mut k = scan.ss as usize;
        if eobrun == 0 {
            while k <= scan.se as usize {
                let rs = actbl.decode(r)?;
                let run = rs >> 4;
                let size = rs & 0x0F;
                let mut newval = 0i32;
                let mut run = i32::from(run);
                if size != 0 {
                    if size != 1 {
                        return Err(Error::CorruptData(
                            "refinement coefficient size must be 1".into(),
                        ));
                    }
                    newval = if r.get_bit()? != 0 { p1 } else { m1 };
                } else if run != 15 {
                    eobrun = 1 << run;
                    if run > 0 {
                        eobrun += r.get_bits(run as u32)?;
                    }
                    break; // remaining handled by EOB logic below
                }
                // Advance over already-nonzero coefficients (appending
                // correction bits) and `run` still-zero ones.
                while k <= scan.se as usize {
                    let idx = ZIGZAG[k];
                    let cur = i32::from(block[idx]);
                    if cur != 0 {
                        if r.get_bit()? != 0 && (cur & p1) == 0 {
                            block[idx] = (cur + if cur >= 0 { p1 } else { m1 }) as i16;
                        }
                    } else {
                        run -= 1;
                        if run < 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                if newval != 0 {
                    if k > scan.se as usize {
                        return Err(Error::CorruptData("refine run past band end".into()));
                    }
                    block[ZIGZAG[k]] = newval as i16;
                }
                k += 1;
            }
        }
        if eobrun > 0 {
            // Append correction bits to remaining nonzero coefficients.
            while k <= scan.se as usize {
                let idx = ZIGZAG[k];
                let cur = i32::from(block[idx]);
                if cur != 0 && r.get_bit()? != 0 && (cur & p1) == 0 {
                    block[idx] = (cur + if cur >= 0 { p1 } else { m1 }) as i16;
                }
                k += 1;
            }
            eobrun -= 1;
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitio::BitWriter;
    use crate::entropy::{encode_scan, StatsSink, WriteSink};
    use crate::frame::{ScanComponent, Subsampling};
    use crate::huffman::{gen_optimal_table, HuffDecoder, HuffEncoder};

    /// Runs encode(stats)->tables->encode(write)->decode for one scan and
    /// returns the decoded coefficient planes.
    fn roundtrip_scan(
        frame: &FrameInfo,
        coeffs: &CoeffPlanes,
        scan: &ScanInfo,
        into: &mut CoeffPlanes,
    ) {
        let mut stats = StatsSink::new();
        encode_scan(frame, coeffs, scan, &mut stats).unwrap();
        let mut dc_enc: [Option<HuffEncoder>; 4] = [None, None, None, None];
        let mut ac_enc: [Option<HuffEncoder>; 4] = [None, None, None, None];
        let mut dc_dec: [Option<HuffDecoder>; 4] = [None, None, None, None];
        let mut ac_dec: [Option<HuffDecoder>; 4] = [None, None, None, None];
        for t in 0..4u8 {
            if stats.dc_used(t) {
                let tbl = gen_optimal_table(&stats.dc_counts[t as usize]).unwrap();
                dc_enc[t as usize] = Some(HuffEncoder::from_table(&tbl).unwrap());
                dc_dec[t as usize] = Some(HuffDecoder::from_table(&tbl).unwrap());
            }
            if stats.ac_used(t) {
                let tbl = gen_optimal_table(&stats.ac_counts[t as usize]).unwrap();
                ac_enc[t as usize] = Some(HuffEncoder::from_table(&tbl).unwrap());
                ac_dec[t as usize] = Some(HuffDecoder::from_table(&tbl).unwrap());
            }
        }
        let mut writer = BitWriter::new();
        {
            let mut sink = WriteSink { writer: &mut writer, dc: dc_enc, ac: ac_enc };
            encode_scan(frame, coeffs, scan, &mut sink).unwrap();
        }
        let bytes = writer.finish();
        let mut reader = BitReader::new(&bytes);
        let tables = DecodeTables { dc: &dc_dec, ac: &ac_dec };
        decode_scan(frame, into, scan, &tables, &mut reader).unwrap();
    }

    fn filled_frame(progressive: bool, w: u32, h: u32) -> (FrameInfo, CoeffPlanes) {
        let frame = FrameInfo::for_encode(w, h, 1, Subsampling::S444, progressive).unwrap();
        let mut coeffs = CoeffPlanes::new(&frame);
        let c = frame.components[0].clone();
        let mut seed = 0x12345u32;
        for row in 0..c.alloc_h {
            for col in 0..c.alloc_w {
                let b = coeffs.block_mut(&frame, 0, row, col);
                for (i, v) in b.iter_mut().enumerate() {
                    seed = seed.wrapping_mul(1103515245).wrapping_add(12345);
                    let r = (seed >> 16) as i32 % 32;
                    *v = match i {
                        0 => (r * 8 - 128) as i16,
                        _ if i < 6 => (r - 16).clamp(-30, 30) as i16,
                        _ if i < 20 && r % 3 == 0 => ((r % 7) - 3) as i16,
                        _ if r % 13 == 0 => 1,
                        _ => 0,
                    };
                }
            }
        }
        (frame, coeffs)
    }

    #[test]
    fn sequential_roundtrip_exact() {
        let (frame, coeffs) = filled_frame(false, 48, 32);
        let scan = ScanInfo {
            components: vec![ScanComponent { comp_index: 0, dc_table: 0, ac_table: 0 }],
            ss: 0,
            se: 63,
            ah: 0,
            al: 0,
        };
        let mut out = CoeffPlanes::new(&frame);
        roundtrip_scan(&frame, &coeffs, &scan, &mut out);
        assert_eq!(out, coeffs);
    }

    #[test]
    fn progressive_full_script_roundtrip_exact() {
        let (frame, coeffs) = filled_frame(true, 40, 40);
        let comp = |_i: usize| ScanComponent { comp_index: 0, dc_table: 0, ac_table: 0 };
        // DC first (Al=1), AC 1..63 first (Al=2), AC refine (Al=1), AC refine
        // (Al=0), DC refine (Al=0): full precision recovery.
        let scans = [
            ScanInfo { components: vec![comp(0)], ss: 0, se: 0, ah: 0, al: 1 },
            ScanInfo { components: vec![comp(0)], ss: 1, se: 63, ah: 0, al: 2 },
            ScanInfo { components: vec![comp(0)], ss: 1, se: 63, ah: 2, al: 1 },
            ScanInfo { components: vec![comp(0)], ss: 1, se: 63, ah: 1, al: 0 },
            ScanInfo { components: vec![comp(0)], ss: 0, se: 0, ah: 1, al: 0 },
        ];
        let mut out = CoeffPlanes::new(&frame);
        for scan in &scans {
            roundtrip_scan(&frame, &coeffs, scan, &mut out);
        }
        assert_eq!(out, coeffs);
    }

    #[test]
    fn progressive_partial_scans_approximate_dc() {
        let (frame, coeffs) = filled_frame(true, 24, 24);
        let comp = ScanComponent { comp_index: 0, dc_table: 0, ac_table: 0 };
        let dc_first = ScanInfo { components: vec![comp], ss: 0, se: 0, ah: 0, al: 1 };
        let mut out = CoeffPlanes::new(&frame);
        roundtrip_scan(&frame, &coeffs, &dc_first, &mut out);
        // After DC-first only: every DC matches to within the Al=1 precision,
        // all AC coefficients are still zero.
        let c = frame.components[0].clone();
        for row in 0..c.alloc_h {
            for col in 0..c.alloc_w {
                let got = out.block(&frame, 0, row, col);
                let want = coeffs.block(&frame, 0, row, col);
                assert_eq!(i32::from(got[0]) >> 1, i32::from(want[0]) >> 1);
                assert!(got[1..].iter().all(|&v| v == 0));
            }
        }
    }

    #[test]
    fn spectral_bands_compose() {
        let (frame, coeffs) = filled_frame(true, 32, 16);
        let comp = ScanComponent { comp_index: 0, dc_table: 0, ac_table: 0 };
        let scans = [
            ScanInfo { components: vec![comp], ss: 0, se: 0, ah: 0, al: 0 },
            ScanInfo { components: vec![comp], ss: 1, se: 5, ah: 0, al: 0 },
            ScanInfo { components: vec![comp], ss: 6, se: 63, ah: 0, al: 0 },
        ];
        let mut out = CoeffPlanes::new(&frame);
        for scan in &scans {
            roundtrip_scan(&frame, &coeffs, scan, &mut out);
        }
        assert_eq!(out, coeffs);
    }

    #[test]
    fn interleaved_color_sequential_roundtrip() {
        let frame = FrameInfo::for_encode(40, 24, 3, Subsampling::S420, false).unwrap();
        let mut coeffs = CoeffPlanes::new(&frame);
        let mut seed = 7u32;
        for ci in 0..3 {
            let c = frame.components[ci].clone();
            for row in 0..c.alloc_h {
                for col in 0..c.alloc_w {
                    let b = coeffs.block_mut(&frame, ci, row, col);
                    for (i, v) in b.iter_mut().enumerate().take(10) {
                        seed = seed.wrapping_mul(48271);
                        *v = ((seed >> 20) as i32 % 19 - 9 + i as i32 % 3) as i16;
                    }
                }
            }
        }
        let scan = ScanInfo {
            components: (0..3)
                .map(|i| ScanComponent {
                    comp_index: i,
                    dc_table: u8::from(i > 0),
                    ac_table: u8::from(i > 0),
                })
                .collect(),
            ss: 0,
            se: 63,
            ah: 0,
            al: 0,
        };
        let mut out = CoeffPlanes::new(&frame);
        roundtrip_scan(&frame, &coeffs, &scan, &mut out);
        assert_eq!(out, coeffs);
    }
}
