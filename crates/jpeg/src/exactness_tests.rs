//! The bit-exactness suite: proves the fast decode hot path — two-level
//! LUT Huffman, batched bit reader, AAN butterfly DCT — produces
//! **byte-identical** pixels to the retained reference implementations
//! (canonical per-bit Huffman walk, per-byte reader, basis-matrix DCT)
//! on every stream shape the PCR read path produces, at *every*
//! scan-group truncation level.
//!
//! Structure:
//!
//! * golden corpus tests: encode a varied corpus (modes × subsampling ×
//!   quality × geometry), cut every scan prefix with `scansplit`, decode
//!   each through both stacks, compare pixels byte for byte;
//! * property tests over random coefficient blocks (decode kernel),
//!   random sample blocks (encode quantization), random Huffman tables
//!   (two-level LUT vs canonical walk), and random stuffed bitstreams
//!   (batched vs per-byte reader).

use crate::bitio::{BitReader, BitSource, BitWriter};
use crate::dct::{descale, forward_dct_raw, forward_quant_scales};
use crate::decoder::decode;
use crate::encoder::{encode, EncodeConfig};
use crate::frame::Subsampling;
use crate::huffman::{gen_optimal_table, HuffDecoder, HuffEncoder, SymbolDecoder};
use crate::image::ImageBuf;
use crate::reference;
use crate::reference::{ReferenceBitReader, ReferenceHuffDecoder};
use crate::sample::{BlockIdct, FastBlockIdct};
use crate::scansplit::{assemble_prefix, split_scans};
use proptest::prelude::*;

/// A deliberately varied image: smooth gradients, block edges, and
/// per-pixel noise whose mix depends on `kind`.
fn test_image(w: u32, h: u32, channels: u8, kind: u32) -> ImageBuf {
    let mut data = Vec::with_capacity((w * h * u32::from(channels)) as usize);
    let mut seed = kind.wrapping_mul(0x9E37_79B9).wrapping_add(w * 31 + h);
    for y in 0..h {
        for x in 0..w {
            seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
            let noise = (seed >> 24) as i32 - 128;
            let base = match kind % 3 {
                0 => ((x * 3 + y * 2) % 256) as i32,
                1 => (((x / 8 + y / 8) % 2) * 220) as i32 + 18,
                _ => (128.0 + 90.0 * ((x as f32) * 0.21).sin() * ((y as f32) * 0.13).cos()) as i32,
            };
            let mix = (base + noise * (kind as i32 % 4) / 3).clamp(0, 255) as u8;
            data.push(mix);
            if channels == 3 {
                data.push(mix.wrapping_add(55));
                data.push(200u8.wrapping_sub(mix / 2));
            }
        }
    }
    ImageBuf::from_raw(w, h, channels, data).unwrap()
}

/// The golden corpus: both frame modes, both subsamplings, gray and
/// color, low through maximum quality, MCU-unaligned geometries.
fn corpus() -> Vec<(String, Vec<u8>)> {
    let mut streams = Vec::new();
    let cases: &[(u32, u32, u8, Subsampling, u8, bool, u16)] = &[
        (48, 32, 3, Subsampling::S420, 85, true, 0),
        (41, 23, 3, Subsampling::S444, 100, true, 0),
        (64, 64, 3, Subsampling::S420, 100, true, 0),
        (33, 57, 1, Subsampling::S444, 92, true, 0),
        (40, 40, 3, Subsampling::S420, 60, true, 0),
        (48, 32, 3, Subsampling::S420, 90, false, 0),
        (17, 9, 1, Subsampling::S444, 100, false, 0),
        // Restart-marker streams: scan-group-aligned entropy segments.
        (48, 32, 3, Subsampling::S420, 85, true, 1),
        (33, 57, 1, Subsampling::S444, 92, true, 5),
        (48, 32, 3, Subsampling::S420, 90, false, 2),
    ];
    for (i, &(w, h, ch, sub, q, progressive, restart)) in cases.iter().enumerate() {
        let img = test_image(w, h, ch, i as u32);
        let cfg = EncodeConfig {
            quality: q,
            subsampling: sub,
            progressive,
            optimize_huffman: progressive,
            restart_interval: restart,
        };
        let name = format!(
            "{w}x{h} ch{ch} q{q} {} rst{restart}",
            if progressive { "prog" } else { "base" }
        );
        streams.push((name, encode(&img, &cfg).unwrap()));
    }
    streams
}

/// The acceptance property: for every corpus stream and every scan-group
/// truncation level, the fast decoder's pixels equal the reference
/// decoder's pixels byte for byte.
#[test]
fn fast_decoder_matches_reference_at_every_truncation_level() {
    for (name, stream) in corpus() {
        let layout = split_scans(&stream).unwrap();
        for n in 1..=layout.num_scans() {
            let prefix = assemble_prefix(&stream, &layout, n).unwrap();
            let fast = decode(&prefix).unwrap();
            let oracle = reference::reference_decode(&prefix).unwrap();
            assert_eq!(
                fast.data(),
                oracle.data(),
                "pixel mismatch: {name}, scans 1..={n}"
            );
        }
    }
}

/// Byte-truncated streams (mid-scan cuts, not just scan boundaries)
/// decode identically through both stacks — the zero-padding semantics
/// of the two readers agree everywhere, not only at clean boundaries.
#[test]
fn fast_decoder_matches_reference_on_ragged_truncations() {
    let (_, stream) = corpus().swap_remove(1); // 41x23 S444 q100 progressive
    for frac in [30usize, 55, 71, 83, 97] {
        let cut = stream.len() * frac / 100;
        let fast = decode(&stream[..cut]);
        let oracle = reference::reference_decode(&stream[..cut]);
        match (fast, oracle) {
            (Ok(f), Ok(o)) => assert_eq!(f.data(), o.data(), "cut at {frac}%"),
            (Err(_), Err(_)) => {}
            (f, o) => panic!("divergent outcome at {frac}%: fast={f:?} oracle={o:?}"),
        }
    }
}

/// Coefficient-level identity: decoding to coefficients through the fast
/// entropy stack equals the reference entropy stack exactly (i16), for
/// every truncation level of a dense progressive stream.
#[test]
fn coefficients_match_reference_exactly() {
    let img = test_image(56, 48, 3, 7);
    let stream = encode(&img, &EncodeConfig::progressive(100)).unwrap();
    let layout = split_scans(&stream).unwrap();
    for n in 1..=layout.num_scans() {
        let prefix = assemble_prefix(&stream, &layout, n).unwrap();
        let fast = crate::decoder::decode_coeffs(&prefix).unwrap();
        let oracle = reference::reference_decode_coeffs(&prefix).unwrap();
        assert_eq!(fast.coeffs, oracle.coeffs, "coefficients at scans 1..={n}");
    }
}

/// Restart markers change the entropy *framing*, never the pixels: an
/// image encoded with restart intervals decodes byte-identically to the
/// marker-less encode, and the stream really does carry DRI + RSTn.
#[test]
fn restart_encode_decodes_identically_to_markerless() {
    use crate::consts::{DRI, RST0};
    for &(w, h, ch, progressive, interval) in
        &[(48u32, 32u32, 3u8, true, 1u16), (33, 57, 1, true, 3), (40, 40, 3, false, 2)]
    {
        let img = test_image(w, h, ch, w + h);
        let base_cfg = EncodeConfig {
            quality: 90,
            subsampling: Subsampling::S420,
            progressive,
            optimize_huffman: progressive,
            restart_interval: 0,
        };
        let plain = encode(&img, &base_cfg).unwrap();
        let marked = encode(&img, &base_cfg.with_restart_interval(interval)).unwrap();
        assert!(
            marked.windows(4).any(|s| s[0] == 0xFF && s[1] == DRI),
            "{w}x{h}: no DRI segment"
        );
        assert!(
            marked.windows(2).any(|s| s[0] == 0xFF && (RST0..=RST0 + 7).contains(&s[1])),
            "{w}x{h}: no RSTn marker"
        );
        let plain_px = decode(&plain).unwrap();
        let marked_px = decode(&marked).unwrap();
        assert_eq!(plain_px.data(), marked_px.data(), "{w}x{h} restart {interval}");
        let oracle = reference::reference_decode(&marked).unwrap();
        assert_eq!(marked_px.data(), oracle.data(), "{w}x{h} fast vs reference");
    }
}

/// Segment-parallel decode is invariant in the worker count: 1, 2, and 4
/// workers produce identical coefficients and pixels on restart streams.
#[test]
fn restart_parallel_workers_match_sequential() {
    use crate::decoder::{decode_coeffs_workers, decode_with_workers, DecodeScratch};
    let img = test_image(64, 48, 1, 11);
    let cfg = EncodeConfig {
        quality: 92,
        subsampling: Subsampling::S444,
        progressive: true,
        optimize_huffman: true,
        restart_interval: 1,
    };
    let stream = encode(&img, &cfg).unwrap();
    let baseline = crate::decoder::decode_coeffs(&stream).unwrap();
    for workers in [1usize, 2, 4] {
        let parallel = decode_coeffs_workers(&stream, &mut Vec::new(), workers).unwrap();
        assert_eq!(baseline.coeffs, parallel.coeffs, "{workers} workers");
        let px = decode_with_workers(&stream, &mut DecodeScratch::default(), workers).unwrap();
        assert_eq!(decode(&stream).unwrap().data(), px.data(), "{workers} workers pixels");
    }
}

/// Truncating a restart stream at every scan-group level keeps the two
/// stacks byte-identical — the restart parser degrades exactly like the
/// marker-less one.
#[test]
fn restart_streams_match_reference_at_every_truncation_level() {
    let img = test_image(48, 40, 3, 3);
    let cfg = EncodeConfig {
        quality: 88,
        subsampling: Subsampling::S420,
        progressive: true,
        optimize_huffman: true,
        restart_interval: 2,
    };
    let stream = encode(&img, &cfg).unwrap();
    let layout = split_scans(&stream).unwrap();
    for n in 1..=layout.num_scans() {
        let prefix = assemble_prefix(&stream, &layout, n).unwrap();
        let fast = decode(&prefix).unwrap();
        let oracle = reference::reference_decode(&prefix).unwrap();
        assert_eq!(fast.data(), oracle.data(), "restart stream, scans 1..={n}");
    }
}

/// A stream whose restart interval *changes between scans* (per-scan
/// MCU-row rounding) stays self-contained through `split_scans` +
/// `assemble_prefix`: every chunk carries its DRI, so every prefix
/// decodes with the right interval — pinned by full-prefix identity.
#[test]
fn scan_chunks_carry_their_restart_intervals() {
    let img = test_image(48, 40, 3, 3);
    let cfg = EncodeConfig {
        quality: 88,
        subsampling: Subsampling::S420,
        progressive: true,
        optimize_huffman: true,
        restart_interval: 2,
    };
    let stream = encode(&img, &cfg).unwrap();
    // Interval differs between luma and chroma scans, so DRI appears
    // mid-stream, between scan chunks — the case a naive splitter drops.
    let dri_count = stream.windows(2).filter(|w| w == &[0xFF, 0xDD]).count();
    assert!(dri_count > 1, "expected several DRI segments, got {dri_count}");
    let layout = split_scans(&stream).unwrap();
    let full = assemble_prefix(&stream, &layout, layout.num_scans()).unwrap();
    assert_eq!(full, stream, "full prefix must reassemble the exact stream");
    // Chunks tile the region between header and EOI with no gaps.
    let mut pos = layout.header_len;
    for &(s, e) in &layout.scans {
        assert_eq!(s, pos, "chunk start leaves a gap (dropped segment)");
        pos = e;
    }
}

fn reference_quantize(spatial: &[f64; 64], q: &[u16; 64]) -> [i16; 64] {
    let mut freq = [0f64; 64];
    reference::reference_forward_dct(spatial, &mut freq);
    core::array::from_fn(|i| descale(freq[i] / f64::from(q[i].max(1))) as i16)
}

fn fast_quantize(spatial: &[f64; 64], q: &[u16; 64]) -> [i16; 64] {
    let qm = forward_quant_scales(q);
    let mut raw = [0f64; 64];
    forward_dct_raw(spatial, &mut raw);
    core::array::from_fn(|i| descale(raw[i] * qm[i]) as i16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Decode kernel: random (realistically bounded) coefficient blocks
    /// with random 8-bit quantization tables produce byte-identical
    /// pixels through the fast f32 AAN kernel and the f64 basis-matrix
    /// oracle.
    #[test]
    fn pixel_kernel_matches_reference_on_random_blocks(
        coeffs in proptest::collection::vec(-2048i32..2048, 64),
        qseed in any::<u32>(),
        sparsity in 0u32..4,
    ) {
        let mut q = [0u16; 64];
        let mut s = qseed | 1;
        for v in q.iter_mut() {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            *v = 1 + ((s >> 16) % 255) as u16;
        }
        let mut block = [0i16; 64];
        for (i, &c) in coeffs.iter().enumerate() {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            // Randomly sparsify: real blocks have structured zero runs.
            let keep = sparsity == 0 || !(s >> 28).is_multiple_of(sparsity);
            // Keep |coeff * q| in the conformant DCT range so the float
            // contract's error margin applies.
            let c = c.clamp(-(4096 / i32::from(q[i])), 4096 / i32::from(q[i]));
            block[i] = if keep { c as i16 } else { 0 };
        }
        let mut fast = FastBlockIdct::default();
        fast.begin_table(&q);
        let mut fast_px = [0u8; 64];
        fast.transform(&block, &mut fast_px);

        // Reference: f64 dequant, basis-matrix IDCT, same descale contract.
        let mut freq = [0f64; 64];
        for i in 0..64 {
            freq[i] = f64::from(block[i]) * f64::from(q[i]);
        }
        let mut spatial = [0f64; 64];
        reference::reference_inverse_dct(&freq, &mut spatial);
        let mut ref_px = [0u8; 64];
        for i in 0..64 {
            ref_px[i] = (descale(spatial[i]) + 128).clamp(0, 255) as u8;
        }
        prop_assert_eq!(fast_px, ref_px);
    }

    /// Encode kernel: random sample blocks quantize to identical
    /// coefficients through the fast AAN forward path (folded
    /// multipliers) and the reference basis-matrix + division path.
    #[test]
    fn forward_quantize_matches_reference_on_random_blocks(
        samples in proptest::collection::vec(0u32..256, 64),
        qseed in any::<u32>(),
    ) {
        let mut q = [0u16; 64];
        let mut s = qseed | 1;
        for v in q.iter_mut() {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            *v = 1 + ((s >> 16) % 255) as u16;
        }
        let mut spatial = [0f64; 64];
        for i in 0..64 {
            spatial[i] = f64::from(samples[i]) - 128.0;
        }
        prop_assert_eq!(fast_quantize(&spatial, &q), reference_quantize(&spatial, &q));
    }

    /// Huffman: the two-level LUT decoder and the canonical walk agree
    /// symbol-for-symbol over random optimal tables (random skew, random
    /// alphabet size — long codes included) and random messages.
    #[test]
    fn lut_decoder_matches_canonical_on_random_tables(
        fseed in any::<u32>(),
        nsyms in 2usize..257,
        msg_seed in any::<u32>(),
    ) {
        let mut freq = vec![0u32; 256];
        let mut s = fseed | 1;
        for f in freq.iter_mut().take(nsyms) {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            // Heavy skew produces long codes; +1 keeps every symbol coded.
            *f = 1 + ((s >> 8) % 65_536) * u32::from(s.is_multiple_of(7)) + (s >> 28);
        }
        let table = gen_optimal_table(&freq).unwrap();
        let enc = HuffEncoder::from_table(&table).unwrap();
        let fast = HuffDecoder::from_table(&table).unwrap();
        let oracle = ReferenceHuffDecoder::from_table(&table).unwrap();
        let mut s = msg_seed | 1;
        let msg: Vec<u8> = (0..600)
            .map(|_| {
                s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                ((s >> 16) as usize % nsyms) as u8
            })
            .collect();
        let mut w = BitWriter::new();
        for &sym in &msg {
            enc.encode(&mut w, sym);
        }
        let bytes = w.finish();
        let mut rf = BitReader::new(&bytes);
        let mut rr = ReferenceBitReader::new(&bytes);
        for &sym in &msg {
            prop_assert_eq!(fast.decode(&mut rf).unwrap(), sym);
            prop_assert_eq!(oracle.decode_symbol(&mut rr).unwrap(), sym);
        }
    }

    /// Readers: the batched 64-bit reader and the per-byte reference
    /// reader return identical bits under a random mixed schedule of
    /// peek / consume / get_bits over random stuffing-heavy streams.
    #[test]
    fn batched_reader_matches_reference_on_random_streams(
        body in proptest::collection::vec(any::<u8>(), 0..400),
        with_marker in any::<bool>(),
        schedule_seed in any::<u32>(),
    ) {
        // Re-stuff the raw body so it is a legal entropy segment.
        let mut data = Vec::with_capacity(body.len() * 2 + 2);
        for &b in &body {
            data.push(b);
            if b == 0xFF {
                data.push(0x00);
            }
        }
        if with_marker {
            data.extend_from_slice(&[0xFF, 0xD9]);
        }
        let mut fast = BitReader::new(&data);
        let mut oracle = ReferenceBitReader::new(&data);
        let mut s = schedule_seed | 1;
        for step in 0..2000 {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            let n = (s >> 7) % 16 + 1; // 1..=16
            match s % 3 {
                0 => prop_assert_eq!(
                    fast.peek_bits(n).unwrap(),
                    oracle.peek_bits(n).unwrap(),
                    "peek({}) at step {}", n, step
                ),
                1 => prop_assert_eq!(
                    fast.get_bits(n).unwrap(),
                    oracle.get_bits(n).unwrap(),
                    "get_bits({}) at step {}", n, step
                ),
                _ => {
                    let m = n.min(8);
                    prop_assert_eq!(fast.peek_bits(m).unwrap(), oracle.peek_bits(m).unwrap());
                    fast.consume(m).unwrap();
                    oracle.consume(m).unwrap();
                }
            }
            if fast.exhausted() && oracle.exhausted() && step > 800 {
                break;
            }
        }
        prop_assert_eq!(fast.marker(), oracle.marker());
    }

    /// Restart splitters: the word-at-a-time scanner and the per-byte
    /// oracle carve identical segment boundaries out of adversarial
    /// buffers dense with stuffing, RSTn markers, and trailing 0xFFs.
    #[test]
    fn restart_splitter_matches_reference_on_random_buffers(
        body in proptest::collection::vec(any::<u8>(), 0..300),
        seed in any::<u32>(),
    ) {
        // Re-stuff, then splice RSTn markers (and sometimes a real
        // marker) at random positions so both kinds of 0xFF pairs occur.
        let mut data = Vec::with_capacity(body.len() * 2 + 8);
        let mut s = seed | 1;
        for &b in &body {
            data.push(b);
            if b == 0xFF {
                data.push(0x00);
            }
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            match s % 23 {
                0..=2 => data.extend_from_slice(&[0xFF, 0xD0 | ((s >> 8) % 8) as u8]),
                3 => data.extend_from_slice(&[0xFF, 0xD9]),
                _ => {}
            }
        }
        if seed.is_multiple_of(5) {
            data.push(0xFF); // lone trailing 0xFF
        }
        prop_assert_eq!(
            crate::bitio::split_restart_segments(&data),
            reference::reference_split_segments(&data)
        );
    }

    /// Restart streams over random geometry / interval / mode decode
    /// byte-identically through both stacks at a random scan prefix.
    #[test]
    fn random_restart_streams_decode_identically(
        w in 9u32..70,
        h in 9u32..70,
        kind in any::<u32>(),
        interval in 1u16..9,
        gray in any::<bool>(),
    ) {
        let img = test_image(w, h, if gray { 1 } else { 3 }, kind);
        let cfg = EncodeConfig {
            quality: 60 + (kind % 41) as u8,
            subsampling: if kind.is_multiple_of(2) { Subsampling::S420 } else { Subsampling::S444 },
            progressive: !kind.is_multiple_of(4),
            optimize_huffman: !kind.is_multiple_of(4),
            restart_interval: interval,
        };
        let stream = encode(&img, &cfg).unwrap();
        let layout = split_scans(&stream).unwrap();
        let n = (kind as usize % layout.num_scans()) + 1;
        let prefix = assemble_prefix(&stream, &layout, n).unwrap();
        let fast = decode(&prefix).unwrap();
        let oracle = reference::reference_decode(&prefix).unwrap();
        prop_assert_eq!(fast.data(), oracle.data());
        // And the segment-parallel path agrees with the sequential one.
        let seq = crate::decoder::decode_coeffs(&prefix).unwrap();
        let par = crate::decoder::decode_coeffs_workers(&prefix, &mut Vec::new(), 4).unwrap();
        prop_assert_eq!(seq.coeffs, par.coeffs);
    }

    /// Corruption: flipping a single bit inside a restart stream's
    /// entropy data never panics and never diverges — both stacks
    /// produce byte-identical pixels, or both report an error.
    #[test]
    fn bit_flipped_restart_streams_never_diverge(
        kind in any::<u32>(),
        flip_seed in any::<u32>(),
        interval in 1u16..5,
    ) {
        let img = test_image(40, 33, 3, kind);
        let cfg = EncodeConfig {
            quality: 85,
            subsampling: Subsampling::S420,
            progressive: true,
            optimize_huffman: true,
            restart_interval: interval,
        };
        let mut stream = encode(&img, &cfg).unwrap();
        // Flip one bit somewhere after the first SOS so the corruption
        // lands in (or frames) entropy-coded data.
        let sos = stream
            .windows(2)
            .position(|s| s == [0xFF, 0xDA])
            .expect("stream has a scan");
        let lo = sos + 2;
        let pos = lo + (flip_seed as usize) % (stream.len() - lo);
        stream[pos] ^= 1 << (flip_seed >> 29);
        let fast = decode(&stream);
        let oracle = reference::reference_decode(&stream);
        match (fast, oracle) {
            (Ok(f), Ok(o)) => prop_assert_eq!(f.data(), o.data(), "flip at {}", pos),
            (Err(_), Err(_)) => {}
            (f, o) => panic!("divergent outcome, flip at {pos}: fast={f:?} oracle={o:?}"),
        }
    }

    /// End to end on random images: full fast decode equals full
    /// reference decode at a random scan prefix.
    #[test]
    fn random_images_decode_identically(
        w in 9u32..70,
        h in 9u32..70,
        kind in any::<u32>(),
        quality in 55u8..101,
    ) {
        let img = test_image(w, h, 3, kind);
        let stream = encode(&img, &EncodeConfig::progressive(quality)).unwrap();
        let layout = split_scans(&stream).unwrap();
        let n = (kind as usize % layout.num_scans()) + 1;
        let prefix = assemble_prefix(&stream, &layout, n).unwrap();
        let fast = decode(&prefix).unwrap();
        let oracle = reference::reference_decode(&prefix).unwrap();
        prop_assert_eq!(fast.data(), oracle.data());
    }
}

