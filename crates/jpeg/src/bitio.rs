//! Bit-level I/O for entropy-coded JPEG segments, including 0xFF byte
//! stuffing (writer) and stuffing removal / marker detection (reader).
//!
//! The reader is the decode hot path's innermost primitive, so it is
//! *batched*: a 64-bit accumulator is refilled 32 bits at a time from the
//! underlying slice (a word-at-a-time scan locates the next 0xFF once, and
//! every byte before it is appended without per-byte stuffing checks).
//! The entropy decoders consume it through the branch-light
//! [`BitSource::peek_bits`] / [`BitSource::consume`] pair: one refill
//! check, one shift, one mask per probe. The same 0xFF scanner
//! ([`find_ff`]) backs `SegmentReader::skip_entropy`, which is how
//! `scansplit` walks scan boundaries without decoding.

use crate::error::{Error, Result};

/// Index of the first `0xFF` byte at or after `from` (returns
/// `data.len()` if there is none). Word-at-a-time: eight bytes are tested
/// per iteration with the classic "has zero byte" trick applied to the
/// complement, so entropy segments are scanned at memory speed. Shared by
/// the [`BitReader`] refill (run length of stuffing-free bytes) and the
/// marker-level entropy skip behind `scansplit`.
#[inline]
pub fn find_ff(data: &[u8], from: usize) -> usize {
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    let mut p = from;
    while p + 8 <= data.len() {
        // pcr-lint: allow(no-panic-in-hot-path) — p + 8 <= len guards the slice, so the 8-byte conversion cannot fail
        let w = u64::from_ne_bytes(data[p..p + 8].try_into().expect("8 bytes"));
        // A byte equals 0xFF iff its complement is zero.
        if (!w).wrapping_sub(LO) & w & HI != 0 {
            break; // an 0xFF is among these 8 bytes: pinpoint it below
        }
        p += 8;
    }
    while p < data.len() && data[p] != 0xFF { // pcr-lint: allow(no-panic-in-hot-path) — p < len checked first
        p += 1;
    }
    p
}

/// Splits an entropy-coded segment at its restart markers, returning the
/// byte range of each restart interval in order (always at least one
/// range, possibly empty). The `RSTn` marker bytes themselves belong to
/// no segment. Stuffed `0xFF 0x00` pairs are entropy data and never
/// split. A lone `0xFF` as the final byte is kept inside the last
/// segment (it is an incomplete marker; [`BitReader`] treats it as
/// end-of-data, matching `SegmentReader::skip_entropy`). A real
/// non-restart marker terminates the scan: the final segment ends at its
/// `0xFF` and the remainder is ignored, mirroring how the reader stops
/// there.
///
/// Uses the same word-at-a-time [`find_ff`] scan as the reader refill,
/// so a marker whose `0xFF` lands on the last byte of an 8-byte scan
/// window is still paired with its marker byte from the next window —
/// the offset pins in this module's tests cover exactly that boundary.
pub fn split_restart_segments(data: &[u8]) -> Vec<(usize, usize)> {
    let mut segments = Vec::new();
    let mut start = 0usize;
    let mut p = 0usize;
    loop {
        p = find_ff(data, p);
        if p + 1 >= data.len() {
            // End of data (including a trailing lone 0xFF): last segment.
            segments.push((start, data.len()));
            return segments;
        }
        // pcr-lint: allow(no-panic-in-hot-path) — p + 1 < len checked above
        let m = data[p + 1];
        if m == 0x00 {
            p += 2; // stuffed 0xFF: entropy data, keep scanning
        } else if (0xD0..=0xD7).contains(&m) {
            segments.push((start, p));
            start = p + 2;
            p += 2;
        } else {
            // Real marker: entropy data ends here.
            segments.push((start, p));
            return segments;
        }
    }
}

/// Writes bits MSB-first into a byte buffer, inserting a 0x00 stuff byte
/// after every literal 0xFF as required by T.81 section B.1.1.5.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    acc: u32,
    nbits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `n` bits of `value` (MSB first). `n` must be <= 24.
    #[inline]
    pub fn put_bits(&mut self, value: u32, n: u32) {
        if n == 0 {
            return;
        }
        debug_assert!(n <= 24);
        let mask = (1u32 << n) - 1;
        self.acc = (self.acc << n) | (value & mask);
        self.nbits += n;
        while self.nbits >= 8 {
            let byte = ((self.acc >> (self.nbits - 8)) & 0xFF) as u8;
            self.out.push(byte);
            if byte == 0xFF {
                self.out.push(0x00);
            }
            self.nbits -= 8;
        }
    }

    /// Pads the final partial byte with 1-bits (T.81 B.1.1.5) and returns the
    /// completed entropy-coded segment.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            let byte = (((self.acc << pad) | ((1u32 << pad) - 1)) & 0xFF) as u8;
            self.out.push(byte);
            if byte == 0xFF {
                self.out.push(0x00);
            }
            self.nbits = 0;
        }
        self.out
    }

    /// Pads the current partial byte with 1-bits and emits the restart
    /// marker `RSTn` (`0xFF 0xD0+n`, T.81 E.1.4). The pad byte goes
    /// through the normal stuffing path (an all-ones pad byte is `0xFF`
    /// and gets its `0x00` stuffed); the marker itself is written raw —
    /// markers are exactly the byte pairs that must *not* be stuffed.
    pub fn restart(&mut self, n: u8) {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.put_bits((1u32 << pad) - 1, pad);
        }
        debug_assert_eq!(self.nbits, 0);
        self.out.push(0xFF);
        self.out.push(0xD0 | (n & 7));
    }

    /// Number of full bytes emitted so far (excluding buffered bits).
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True if nothing has been emitted or buffered.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty() && self.nbits == 0
    }
}

/// The bit-level source entropy decoders read from.
///
/// Implemented by the batched [`BitReader`] (production) and by the
/// retained per-byte reference reader (tests), so the scan-decoding logic
/// in [`crate::dentropy`] is written exactly once and the bit-exactness
/// suite can run it against both primitives.
///
/// Contract shared by all implementations (the *refill contract*):
///
/// * bits are delivered MSB-first;
/// * `peek_bits(n)`/`get_bits(n)` support `n <= 16` and transparently
///   refill from the underlying slice, removing `0xFF 0x00` stuffing;
/// * encountering a real marker (`0xFF` followed by anything but `0x00`)
///   or the end of the slice ends the entropy data: all further bits read
///   as zero (T.81 behaviour, which truncated progressive streams rely
///   on) and the reader reports itself exhausted;
/// * `consume(n)` discards bits previously made available by a peek and
///   never refills.
pub trait BitSource {
    /// Reads `n` bits (`n <= 16`) MSB-first.
    fn get_bits(&mut self, n: u32) -> Result<u32>;
    /// Peeks `n` bits (`n <= 16`) without consuming them (zero-padded past
    /// the end of the entropy data).
    fn peek_bits(&mut self, n: u32) -> Result<u32>;
    /// Consumes `n` bits previously peeked.
    fn consume(&mut self, n: u32) -> Result<()>;
    /// Reads a single bit.
    #[inline]
    fn get_bit(&mut self) -> Result<u32> {
        self.get_bits(1)
    }
    /// Hint that a multi-peek decode step is about to run: tops the
    /// buffer up so the following `peek_bits`/`consume` calls hit their
    /// never-taken refill branches. Default: no-op (correctness never
    /// depends on it — peeks refill on demand).
    #[inline]
    fn prefetch(&mut self) {}
    /// Peeks a 32-bit window (MSB-first, zero-padded past the end of the
    /// entropy data) without consuming anything, or `None` when the
    /// implementation cannot serve one. The multi-symbol Huffman fast
    /// path resolves two short code+magnitude steps from a single window
    /// and then issues one `consume`; callers must fall back to the
    /// 16-bit peek path on `None`. After `Some(w)` the source guarantees
    /// at least 32 buffered bits, so a following `consume(n)` with
    /// `n <= 32` cannot fail. Default: `None` (the per-byte reference
    /// reader's 32-bit accumulator cannot hold a 32-bit lookahead).
    #[inline]
    fn peek_wide(&mut self) -> Option<u32> {
        None
    }
}

/// Reads bits MSB-first from an entropy-coded segment, transparently
/// removing 0xFF 0x00 stuffing and stopping at any real marker.
///
/// Batched: the accumulator keeps its valid bits *top-aligned* in a
/// `u64` (everything below them is zero), so inside a stuffing-free run
/// — located once per run by [`find_ff`] — a refill is branch-free: one
/// unaligned 8-byte big-endian load, one shift, one `or`, topping the
/// buffer up to at least 56 bits. Peek is a single shift from the top;
/// consume is a shift up. Only bytes at the scanner's 0xFF mark (or past
/// the end) take the per-byte slow path. After any refill at least 56
/// valid bits are buffered, so a two-probe Huffman lookup (8 + 16 bits)
/// never refills twice.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next unread byte (bytes before `pos` are in `acc` or consumed).
    pos: usize,
    /// Index of the next 0xFF at or after `pos` (`data.len()` if none).
    ff_ahead: usize,
    /// Top `nbits` bits are valid; all lower bits are zero.
    acc: u64,
    nbits: u32,
    /// Set when a non-stuffed 0xFF marker byte was encountered; entropy data
    /// is exhausted at that point.
    marker_hit: Option<u8>,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`, which should start at the first
    /// entropy-coded byte (just after an SOS header).
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0, ff_ahead: find_ff(data, 0), acc: 0, nbits: 0, marker_hit: None }
    }

    /// Byte offset of the next byte not yet pulled into the accumulator.
    /// Refills are batched, so this can run ahead of the logical bit
    /// position by up to 8 bytes.
    pub fn byte_pos(&self) -> usize {
        self.pos
    }

    /// The marker byte that terminated this segment, if any was seen.
    pub fn marker(&self) -> Option<u8> {
        self.marker_hit
    }

    /// Byte-at-a-time refill for the cases the branch-free path cannot
    /// handle: near an 0xFF (stuffing or marker) or near the end of the
    /// slice. Zero bits flow once a marker/EOF is hit.
    #[cold]
    fn refill_slow(&mut self) {
        while self.nbits <= 56 {
            if self.marker_hit.is_some() {
                // Zero-padding: the bits below the top are already zero.
                self.nbits += 8;
            } else if self.pos < self.ff_ahead {
                // pcr-lint: allow(no-panic-in-hot-path) — pos < ff_ahead <= data.len()
                self.acc |= u64::from(self.data[self.pos]) << (56 - self.nbits);
                self.pos += 1;
                self.nbits += 8;
            } else if self.pos >= self.data.len() {
                // Truncated stream: treat like marker-hit and pad with
                // zeros so callers can finish the current MCU then notice
                // exhaustion.
                self.marker_hit = Some(0x00);
                self.nbits += 8;
            } else {
                // pcr-lint: allow(no-panic-in-hot-path) — debug-only; pos < len by the else-if chain
                debug_assert_eq!(self.data[self.pos], 0xFF);
                match self.data.get(self.pos + 1) {
                    Some(0x00) => {
                        self.acc |= 0xFFu64 << (56 - self.nbits);
                        self.pos += 2; // stuffed 0xFF
                        self.ff_ahead = find_ff(self.data, self.pos);
                        self.nbits += 8;
                    }
                    Some(&m) => {
                        self.marker_hit = Some(m);
                        // Leave `pos` at the 0xFF; feed zero bits from here.
                        self.nbits += 8;
                    }
                    None => {
                        self.marker_hit = Some(0x00);
                        self.nbits += 8;
                    }
                }
            }
        }
    }

    /// Refills the accumulator to at least 56 valid bits. Safe at any
    /// `nbits < 64`: inside a stuffing-free run the top-up is branch-free
    /// (one unaligned load, shift, or), so callers may invoke it
    /// unconditionally rather than branching on the buffer level.
    #[inline]
    fn refill(&mut self) {
        if self.pos + 8 <= self.ff_ahead {
            let w = u64::from_be_bytes(
                // pcr-lint: allow(no-panic-in-hot-path) — pos + 8 <= ff_ahead <= data.len() guards the 8-byte slice
                self.data[self.pos..self.pos + 8].try_into().expect("8 bytes"),
            );
            self.acc |= w >> self.nbits;
            self.pos += ((63 - self.nbits) >> 3) as usize;
            self.nbits |= 56;
        } else if self.nbits < 32 {
            self.refill_slow();
        }
    }

    /// Reads `n` bits (n <= 16) MSB-first.
    #[inline]
    pub fn get_bits(&mut self, n: u32) -> Result<u32> {
        if n == 0 {
            return Ok(0);
        }
        debug_assert!(n <= 16);
        if self.nbits < n {
            self.refill();
        }
        let v = (self.acc >> (64 - n)) as u32;
        self.acc <<= n;
        self.nbits -= n;
        Ok(v)
    }

    /// Reads a single bit.
    #[inline]
    pub fn get_bit(&mut self) -> Result<u32> {
        if self.nbits == 0 {
            self.refill();
        }
        let v = (self.acc >> 63) as u32;
        self.acc <<= 1;
        self.nbits -= 1;
        Ok(v)
    }

    /// Peeks up to 16 bits without consuming them (zero-padded past EOF).
    #[inline]
    pub fn peek_bits(&mut self, n: u32) -> Result<u32> {
        debug_assert!((1..=16).contains(&n));
        if self.nbits < n {
            self.refill();
        }
        Ok((self.acc >> (64 - n)) as u32)
    }

    /// Consumes `n` bits previously peeked.
    #[inline]
    pub fn consume(&mut self, n: u32) -> Result<()> {
        if self.nbits < n {
            return Err(Error::CorruptData("consume past fill".into()));
        }
        self.acc <<= n;
        self.nbits -= n;
        Ok(())
    }

    /// True once the reader has hit a marker or the end of the data;
    /// every bit from that point on reads as zero.
    pub fn exhausted(&self) -> bool {
        self.marker_hit.is_some()
    }
}

impl BitSource for BitReader<'_> {
    #[inline]
    fn get_bits(&mut self, n: u32) -> Result<u32> {
        BitReader::get_bits(self, n)
    }
    #[inline]
    fn peek_bits(&mut self, n: u32) -> Result<u32> {
        BitReader::peek_bits(self, n)
    }
    #[inline]
    fn consume(&mut self, n: u32) -> Result<()> {
        BitReader::consume(self, n)
    }
    #[inline]
    fn get_bit(&mut self) -> Result<u32> {
        BitReader::get_bit(self)
    }
    #[inline]
    fn prefetch(&mut self) {
        self.refill();
    }
    #[inline]
    fn peek_wide(&mut self) -> Option<u32> {
        if self.nbits < 32 {
            self.refill();
        }
        // `refill` tops up to >= 56 bits on either path (zero-padding past
        // markers/EOF), and the `nbits >= 32` case needs no refill at all,
        // so the top 32 bits of `acc` are always a valid window here.
        Some((self.acc >> 32) as u32)
    }
}

/// Sign-extends an `n`-bit magnitude per T.81 F.2.2.1 `EXTEND`.
///
/// Branch-free: whether the magnitude is in the negative half is a
/// random data bit in real streams, so a conditional here would
/// mispredict constantly in the per-coefficient hot loop.
#[inline]
pub fn extend(v: u32, n: u32) -> i32 {
    if n == 0 {
        return 0;
    }
    let v = v as i32;
    let vt = 1i32 << (n - 1);
    // v < vt  =>  add (1 - 2^n); otherwise add 0.
    v + (((v < vt) as i32) * (1i32.wrapping_sub(1i32 << n)))
}

/// Number of bits needed to represent `|v|` (the JPEG "size" category).
#[inline]
pub fn bit_size(v: i32) -> u32 {
    let a = v.unsigned_abs();
    32 - a.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ReferenceBitReader;

    #[test]
    fn roundtrip_simple_bits() {
        let mut w = BitWriter::new();
        w.put_bits(0b101, 3);
        w.put_bits(0b0110_1001, 8);
        w.put_bits(0b1, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(3).unwrap(), 0b101);
        assert_eq!(r.get_bits(8).unwrap(), 0b0110_1001);
        assert_eq!(r.get_bit().unwrap(), 1);
    }

    #[test]
    fn writer_stuffs_ff() {
        let mut w = BitWriter::new();
        w.put_bits(0xFF, 8);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0xFF, 0x00]);
    }

    #[test]
    fn writer_pads_with_ones() {
        let mut w = BitWriter::new();
        w.put_bits(0b1, 1);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1111_1111, 0x00]); // 0xFF gets stuffed too
    }

    #[test]
    fn reader_unstuffs_ff() {
        let data = [0xFF, 0x00, 0xAB];
        let mut r = BitReader::new(&data);
        assert_eq!(r.get_bits(8).unwrap(), 0xFF);
        assert_eq!(r.get_bits(8).unwrap(), 0xAB);
        // Batched refill reads eagerly, so the end-of-data sentinel is
        // already visible; no *real* marker was seen.
        assert_ne!(r.marker(), Some(0xD9));
    }

    #[test]
    fn reader_stops_at_marker() {
        let data = [0x12, 0xFF, 0xD9];
        let mut r = BitReader::new(&data);
        assert_eq!(r.get_bits(8).unwrap(), 0x12);
        // Next read crosses into the marker: zero-padded.
        assert_eq!(r.get_bits(8).unwrap(), 0x00);
        assert_eq!(r.marker(), Some(0xD9));
    }

    #[test]
    fn reader_zero_pads_truncated_stream() {
        let data = [0b1010_0000];
        let mut r = BitReader::new(&data);
        assert_eq!(r.get_bits(4).unwrap(), 0b1010);
        assert_eq!(r.get_bits(8).unwrap(), 0);
        assert!(r.exhausted());
    }

    #[test]
    fn find_ff_scans_words() {
        assert_eq!(find_ff(&[], 0), 0);
        assert_eq!(find_ff(&[0xFF], 0), 0);
        let mut data = vec![0u8; 100];
        assert_eq!(find_ff(&data, 0), 100);
        for at in [0usize, 3, 7, 8, 9, 63, 64, 65, 99] {
            data.fill(0x11);
            data[at] = 0xFF;
            assert_eq!(find_ff(&data, 0), at, "position {at}");
            if at > 0 {
                assert_eq!(find_ff(&data, at + 1), 100);
            }
        }
    }

    /// Regression pin for the word-at-a-time scanner's window boundary:
    /// an `0xFF` on the *last* byte of an 8-byte scan window (position
    /// ≡ 7 mod 8) must be found at its exact offset, and a marker split
    /// across the boundary (`0xFF` in one window, the marker byte in the
    /// next) must still be paired correctly by every `find_ff` caller.
    #[test]
    fn find_ff_every_alignment_and_window_boundary() {
        // Every position mod 8, at several window indices, under every
        // starting offset `from` in 0..16.
        for at in 0..40usize {
            let mut data = vec![0x11u8; 48];
            data[at] = 0xFF;
            for from in 0..16usize {
                let expect = if from <= at { at } else { 48 };
                assert_eq!(find_ff(&data, from), expect, "at={at} from={from}");
            }
        }
        // 0xFF as the final byte of the slice, for slice lengths around
        // the 8-byte step (tail loop takes over exactly at len - len%8).
        for len in 1..=24usize {
            let mut data = vec![0x22u8; len];
            data[len - 1] = 0xFF;
            assert_eq!(find_ff(&data, 0), len - 1, "len={len}");
        }
    }

    /// A marker whose 0xFF is the last byte of one 8-byte refill window
    /// and whose marker byte opens the next window must terminate the
    /// batched reader at the same bit position as the reference reader.
    #[test]
    fn marker_split_across_refill_window_boundary() {
        for ff_at in [7usize, 15, 23, 31] {
            let mut data = vec![0x5Au8; ff_at];
            data.push(0xFF);
            data.push(0xD9);
            let mut fast = BitReader::new(&data);
            let mut reference = ReferenceBitReader::new(&data);
            for _ in 0..ff_at {
                assert_eq!(
                    fast.get_bits(8).unwrap(),
                    reference.get_bits(8).unwrap(),
                    "ff_at={ff_at}"
                );
            }
            assert_eq!(fast.get_bits(8).unwrap(), 0);
            assert_eq!(reference.get_bits(8).unwrap(), 0);
            assert_eq!(fast.marker(), Some(0xD9));
            assert_eq!(fast.marker(), reference.marker());
        }
    }

    /// Pins the batched refill's offset arithmetic
    /// (`pos += (63 - nbits) >> 3`, `nbits |= 56`) as a conservation
    /// law: over stuffing-free data, bits pulled from the slice equal
    /// bits delivered to the caller plus bits still buffered — at every
    /// possible pre-refill fill level.
    #[test]
    fn refill_offset_arithmetic_is_exact() {
        let data: Vec<u8> = (0u8..64).collect();
        for pre_bits in 0..32u32 {
            let mut r = BitReader::new(&data);
            r.prefetch();
            let delivered = r.nbits - pre_bits;
            r.consume(delivered).unwrap();
            assert_eq!(r.nbits, pre_bits);
            let pos_before = r.byte_pos();
            r.prefetch(); // the batched refill under test
            assert!(r.nbits >= 56, "pre_bits={pre_bits}");
            assert_eq!(
                (r.byte_pos() - pos_before) as u32 * 8,
                r.nbits - pre_bits,
                "refill pulled partial bytes at pre_bits={pre_bits}"
            );
            assert_eq!(r.byte_pos() as u32 * 8, delivered + r.nbits);
        }
    }

    /// `peek_wide` must agree with two chained 16-bit peeks on the
    /// reference reader — including across stuffing, markers, and EOF
    /// zero padding.
    #[test]
    fn wide_peek_matches_reference_reader_bytes() {
        let mut data = Vec::new();
        for i in 0..48u32 {
            data.push((i.wrapping_mul(151) & 0xFF) as u8);
            if data.last() == Some(&0xFF) {
                data.push(0x00);
            }
        }
        data.extend_from_slice(&[0xFF, 0xD9]);
        for cut in [data.len(), data.len() - 3, 9, 1, 0] {
            let data = &data[..cut];
            let mut fast = BitReader::new(data);
            let mut reference = ReferenceBitReader::new(data);
            for step in 0..80 {
                let w = fast.peek_wide().expect("batched reader serves wide peeks");
                let hi = reference.peek_bits(16).unwrap();
                reference.consume(16).unwrap();
                let lo = reference.peek_bits(16).unwrap();
                assert_eq!(w, (hi << 16) | lo, "cut={cut} step={step}");
                // Advance both readers 16 bits; the windows stay phased.
                fast.consume(16).unwrap();
            }
        }
    }

    #[test]
    fn bitwriter_restart_aligns_and_emits_marker() {
        // Mid-byte pad is 1-bits; an all-ones pad byte gets stuffed.
        let mut w = BitWriter::new();
        w.put_bits(0b1, 1);
        w.restart(2);
        w.put_bits(0xA5, 8);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0xFF, 0x00, 0xFF, 0xD2, 0xA5]);
        // Byte-aligned already: no pad byte at all.
        let mut w = BitWriter::new();
        w.put_bits(0x3C, 8);
        w.restart(9); // index reduced mod 8
        let bytes = w.finish();
        assert_eq!(bytes, vec![0x3C, 0xFF, 0xD1]);
    }

    #[test]
    fn split_restart_segments_pins_boundaries() {
        // No markers: one segment covering everything.
        assert_eq!(split_restart_segments(&[1, 2, 3]), vec![(0, 3)]);
        assert_eq!(split_restart_segments(&[]), vec![(0, 0)]);
        // Simple split; marker bytes excluded.
        assert_eq!(
            split_restart_segments(&[0xAA, 0xFF, 0xD0, 0xBB]),
            vec![(0, 1), (3, 4)]
        );
        // Stuffed 0xFF00 is data; RST right after still splits.
        assert_eq!(
            split_restart_segments(&[0xFF, 0x00, 0xFF, 0xD7, 0xFF, 0x00]),
            vec![(0, 2), (4, 6)]
        );
        // Back-to-back restarts produce an empty middle segment.
        assert_eq!(
            split_restart_segments(&[0x01, 0xFF, 0xD0, 0xFF, 0xD1, 0x02]),
            vec![(0, 1), (3, 3), (5, 6)]
        );
        // Lone trailing 0xFF stays inside the final segment.
        assert_eq!(
            split_restart_segments(&[0x01, 0xFF, 0xD0, 0xFF]),
            vec![(0, 1), (3, 4)]
        );
        // A real (non-RST) marker ends the scan: remainder ignored.
        assert_eq!(
            split_restart_segments(&[0x01, 0xFF, 0xD9, 0x02, 0xFF, 0xD0]),
            vec![(0, 1)]
        );
        // RST 0xFF on the last byte of an 8-byte scan window (offset 7),
        // marker byte in the next window: exact offsets pinned.
        let mut data = vec![0x33u8; 7];
        data.extend_from_slice(&[0xFF, 0xD4]);
        data.extend_from_slice(&[0x44; 5]);
        assert_eq!(split_restart_segments(&data), vec![(0, 7), (9, 14)]);
    }

    #[test]
    fn extend_matches_spec() {
        // From T.81 Table F.1 semantics.
        assert_eq!(extend(0, 1), -1);
        assert_eq!(extend(1, 1), 1);
        assert_eq!(extend(0b00, 2), -3);
        assert_eq!(extend(0b01, 2), -2);
        assert_eq!(extend(0b10, 2), 2);
        assert_eq!(extend(0b11, 2), 3);
        assert_eq!(extend(0, 0), 0);
    }

    #[test]
    fn bit_size_categories() {
        assert_eq!(bit_size(0), 0);
        assert_eq!(bit_size(1), 1);
        assert_eq!(bit_size(-1), 1);
        assert_eq!(bit_size(2), 2);
        assert_eq!(bit_size(-3), 2);
        assert_eq!(bit_size(255), 8);
        assert_eq!(bit_size(-1024), 11);
    }

    #[test]
    fn many_values_roundtrip() {
        let vals: Vec<(u32, u32)> = (0u32..1000)
            .map(|i| (i.wrapping_mul(2654435761) & 0x3FF, (i % 10) + 1))
            .collect();
        let mut w = BitWriter::new();
        for &(v, n) in &vals {
            w.put_bits(v & ((1 << n) - 1), n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &vals {
            assert_eq!(r.get_bits(n).unwrap(), v & ((1 << n) - 1));
        }
    }

    /// Drives the batched reader and the retained per-byte reference
    /// reader through an identical schedule of mixed peek / consume /
    /// get_bits calls and asserts every returned value and the final
    /// marker state agree. Streams include heavy 0xFF stuffing and a
    /// terminating marker.
    fn assert_readers_agree(data: &[u8], schedule_seed: u32) {
        let mut fast = BitReader::new(data);
        let mut reference = ReferenceBitReader::new(data);
        let mut s = schedule_seed | 1;
        for step in 0..4000 {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            let n = (s >> 7) % 17; // 0..=16
            match s % 3 {
                0 => {
                    let a = fast.peek_bits(n.max(1)).unwrap();
                    let b = reference.peek_bits(n.max(1)).unwrap();
                    assert_eq!(a, b, "peek({n}) at step {step}");
                }
                1 => {
                    let a = fast.get_bits(n).unwrap();
                    let b = reference.get_bits(n).unwrap();
                    assert_eq!(a, b, "get_bits({n}) at step {step}");
                }
                _ => {
                    let m = (n % 8).min(8);
                    let a = fast.peek_bits(8).unwrap();
                    let b = reference.peek_bits(8).unwrap();
                    assert_eq!(a, b, "peek(8) at step {step}");
                    fast.consume(m).unwrap();
                    reference.consume(m).unwrap();
                }
            }
            if fast.exhausted() && reference.exhausted() && step > 600 {
                break;
            }
        }
        assert_eq!(fast.exhausted(), reference.exhausted());
        assert_eq!(fast.marker(), reference.marker());
    }

    #[test]
    fn batched_reader_matches_reference_on_stuffed_streams() {
        // Stuffed-heavy stream: long 0xFF 0x00 runs, clean runs, marker tail.
        let mut data = Vec::new();
        for i in 0..96u32 {
            if i % 5 == 0 {
                data.extend_from_slice(&[0xFF, 0x00]);
            } else {
                data.push((i.wrapping_mul(97) & 0xFF) as u8);
                if data.last() == Some(&0xFF) {
                    data.push(0x00);
                }
            }
        }
        data.extend_from_slice(&[0xFF, 0xD9]);
        for seed in [1u32, 7, 1234, 99991] {
            assert_readers_agree(&data, seed);
        }
        // Truncated (no marker) and empty streams.
        assert_readers_agree(&data[..data.len().saturating_sub(7)], 5);
        assert_readers_agree(&[], 3);
        assert_readers_agree(&[0xFF], 11); // lone 0xFF at end
    }
}
