//! Bit-level I/O for entropy-coded JPEG segments, including 0xFF byte
//! stuffing (writer) and stuffing removal / marker detection (reader).

use crate::error::{Error, Result};

/// Writes bits MSB-first into a byte buffer, inserting a 0x00 stuff byte
/// after every literal 0xFF as required by T.81 section B.1.1.5.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    acc: u32,
    nbits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `n` bits of `value` (MSB first). `n` must be <= 24.
    #[inline]
    pub fn put_bits(&mut self, value: u32, n: u32) {
        if n == 0 {
            return;
        }
        debug_assert!(n <= 24);
        let mask = (1u32 << n) - 1;
        self.acc = (self.acc << n) | (value & mask);
        self.nbits += n;
        while self.nbits >= 8 {
            let byte = ((self.acc >> (self.nbits - 8)) & 0xFF) as u8;
            self.out.push(byte);
            if byte == 0xFF {
                self.out.push(0x00);
            }
            self.nbits -= 8;
        }
    }

    /// Pads the final partial byte with 1-bits (T.81 B.1.1.5) and returns the
    /// completed entropy-coded segment.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            let byte = (((self.acc << pad) | ((1u32 << pad) - 1)) & 0xFF) as u8;
            self.out.push(byte);
            if byte == 0xFF {
                self.out.push(0x00);
            }
            self.nbits = 0;
        }
        self.out
    }

    /// Number of full bytes emitted so far (excluding buffered bits).
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True if nothing has been emitted or buffered.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty() && self.nbits == 0
    }
}

/// Reads bits MSB-first from an entropy-coded segment, transparently
/// removing 0xFF 0x00 stuffing and stopping at any real marker.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u32,
    nbits: u32,
    /// Set when a non-stuffed 0xFF marker byte was encountered; entropy data
    /// is exhausted at that point.
    marker_hit: Option<u8>,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`, which should start at the first
    /// entropy-coded byte (just after an SOS header).
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0, acc: 0, nbits: 0, marker_hit: None }
    }

    /// Byte offset of the next unread byte within the input slice.
    pub fn byte_pos(&self) -> usize {
        self.pos
    }

    /// The marker byte that terminated this segment, if any was seen.
    pub fn marker(&self) -> Option<u8> {
        self.marker_hit
    }

    #[inline]
    fn fill(&mut self) -> Result<()> {
        // After hitting a marker, T.81 behaviour is to feed zero bits; a
        // well-formed stream never needs them, and a truncated progressive
        // stream decodes its remaining EOB runs harmlessly.
        if self.marker_hit.is_some() {
            self.acc <<= 8;
            self.nbits += 8;
            return Ok(());
        }
        if self.pos >= self.data.len() {
            // Truncated stream: treat like marker-hit and pad with zeros so
            // callers can finish the current MCU then notice exhaustion.
            self.marker_hit = Some(0x00);
            self.acc <<= 8;
            self.nbits += 8;
            return Ok(());
        }
        let b = self.data[self.pos];
        self.pos += 1;
        if b == 0xFF {
            match self.data.get(self.pos) {
                Some(0x00) => {
                    self.pos += 1; // stuffed 0xFF
                    self.acc = (self.acc << 8) | 0xFF;
                }
                Some(&m) => {
                    self.marker_hit = Some(m);
                    self.pos -= 1; // leave reader at the 0xFF
                    self.acc <<= 8;
                }
                None => {
                    self.marker_hit = Some(0x00);
                    self.acc <<= 8;
                }
            }
        } else {
            self.acc = (self.acc << 8) | u32::from(b);
        }
        self.nbits += 8;
        Ok(())
    }

    /// Reads `n` bits (n <= 16) MSB-first.
    #[inline]
    pub fn get_bits(&mut self, n: u32) -> Result<u32> {
        if n == 0 {
            return Ok(0);
        }
        debug_assert!(n <= 16);
        while self.nbits < n {
            self.fill()?;
        }
        self.nbits -= n;
        Ok((self.acc >> self.nbits) & ((1u32 << n) - 1))
    }

    /// Reads a single bit.
    #[inline]
    pub fn get_bit(&mut self) -> Result<u32> {
        self.get_bits(1)
    }

    /// Peeks up to 16 bits without consuming them (zero-padded past EOF).
    #[inline]
    pub fn peek_bits(&mut self, n: u32) -> Result<u32> {
        debug_assert!(n <= 16);
        while self.nbits < n {
            self.fill()?;
        }
        Ok((self.acc >> (self.nbits - n)) & ((1u32 << n) - 1))
    }

    /// Consumes `n` bits previously peeked.
    #[inline]
    pub fn consume(&mut self, n: u32) -> Result<()> {
        if self.nbits < n {
            return Err(Error::CorruptData("consume past fill".into()));
        }
        self.nbits -= n;
        Ok(())
    }

    /// True once the reader has both hit a marker/EOF and drained its
    /// buffered whole bytes.
    pub fn exhausted(&self) -> bool {
        self.marker_hit.is_some()
    }
}

/// Sign-extends an `n`-bit magnitude per T.81 F.2.2.1 `EXTEND`.
#[inline]
pub fn extend(v: u32, n: u32) -> i32 {
    if n == 0 {
        return 0;
    }
    let vt = 1i32 << (n - 1);
    let v = v as i32;
    if v < vt {
        v - (1i32 << n) + 1
    } else {
        v
    }
}

/// Number of bits needed to represent `|v|` (the JPEG "size" category).
#[inline]
pub fn bit_size(v: i32) -> u32 {
    let a = v.unsigned_abs();
    32 - a.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple_bits() {
        let mut w = BitWriter::new();
        w.put_bits(0b101, 3);
        w.put_bits(0b0110_1001, 8);
        w.put_bits(0b1, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(3).unwrap(), 0b101);
        assert_eq!(r.get_bits(8).unwrap(), 0b0110_1001);
        assert_eq!(r.get_bit().unwrap(), 1);
    }

    #[test]
    fn writer_stuffs_ff() {
        let mut w = BitWriter::new();
        w.put_bits(0xFF, 8);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0xFF, 0x00]);
    }

    #[test]
    fn writer_pads_with_ones() {
        let mut w = BitWriter::new();
        w.put_bits(0b1, 1);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1111_1111, 0x00]); // 0xFF gets stuffed too
    }

    #[test]
    fn reader_unstuffs_ff() {
        let data = [0xFF, 0x00, 0xAB];
        let mut r = BitReader::new(&data);
        assert_eq!(r.get_bits(8).unwrap(), 0xFF);
        assert_eq!(r.get_bits(8).unwrap(), 0xAB);
        assert!(r.marker().is_none());
    }

    #[test]
    fn reader_stops_at_marker() {
        let data = [0x12, 0xFF, 0xD9];
        let mut r = BitReader::new(&data);
        assert_eq!(r.get_bits(8).unwrap(), 0x12);
        // Next read crosses into the marker: zero-padded.
        assert_eq!(r.get_bits(8).unwrap(), 0x00);
        assert_eq!(r.marker(), Some(0xD9));
    }

    #[test]
    fn reader_zero_pads_truncated_stream() {
        let data = [0b1010_0000];
        let mut r = BitReader::new(&data);
        assert_eq!(r.get_bits(4).unwrap(), 0b1010);
        assert_eq!(r.get_bits(8).unwrap(), 0);
        assert!(r.exhausted());
    }

    #[test]
    fn extend_matches_spec() {
        // From T.81 Table F.1 semantics.
        assert_eq!(extend(0, 1), -1);
        assert_eq!(extend(1, 1), 1);
        assert_eq!(extend(0b00, 2), -3);
        assert_eq!(extend(0b01, 2), -2);
        assert_eq!(extend(0b10, 2), 2);
        assert_eq!(extend(0b11, 2), 3);
        assert_eq!(extend(0, 0), 0);
    }

    #[test]
    fn bit_size_categories() {
        assert_eq!(bit_size(0), 0);
        assert_eq!(bit_size(1), 1);
        assert_eq!(bit_size(-1), 1);
        assert_eq!(bit_size(2), 2);
        assert_eq!(bit_size(-3), 2);
        assert_eq!(bit_size(255), 8);
        assert_eq!(bit_size(-1024), 11);
    }

    #[test]
    fn many_values_roundtrip() {
        let vals: Vec<(u32, u32)> = (0u32..1000)
            .map(|i| (i.wrapping_mul(2654435761) & 0x3FF, (i % 10) + 1))
            .collect();
        let mut w = BitWriter::new();
        for &(v, n) in &vals {
            w.put_bits(v & ((1 << n) - 1), n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &vals {
            assert_eq!(r.get_bits(n).unwrap(), v & ((1 << n) - 1));
        }
    }
}
