//! Huffman coding: canonical table representation (the DHT wire format),
//! encoder/decoder table derivation, and optimal table construction from
//! symbol frequencies (the libjpeg `jpeg_gen_optimal_table` algorithm used
//! by `jpegtran -optimize`, which progressive encoding relies on).

use crate::bitio::{BitReader, BitWriter};
use crate::error::{Error, Result};

/// A Huffman table in canonical (DHT) form: `bits[l]` = number of codes of
/// length `l + 1`, and `vals` lists symbols in code order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HuffTable {
    /// Count of codes per code length 1..=16.
    pub bits: [u8; 16],
    /// Symbols ordered by increasing code length / code value.
    pub vals: Vec<u8>,
}

impl HuffTable {
    /// Builds a table from DHT-format arrays, validating counts.
    pub fn new(bits: [u8; 16], vals: Vec<u8>) -> Result<Self> {
        let total: usize = bits.iter().map(|&b| b as usize).sum();
        if total != vals.len() {
            return Err(Error::BadHuffman(format!(
                "bits declare {total} codes but {} values supplied",
                vals.len()
            )));
        }
        if total > 256 {
            return Err(Error::BadHuffman("more than 256 codes".into()));
        }
        // Kraft inequality check: the code must be realizable.
        let mut kraft = 0u64;
        for (i, &b) in bits.iter().enumerate() {
            kraft += (b as u64) << (16 - (i + 1));
        }
        if kraft > 1 << 16 {
            return Err(Error::BadHuffman("code lengths violate Kraft inequality".into()));
        }
        Ok(Self { bits, vals })
    }

    /// The standard table constructors (T.81 Annex K).
    pub fn std_dc_luma() -> Self {
        Self::new(crate::consts::STD_DC_LUMA_BITS, crate::consts::STD_DC_LUMA_VALS.to_vec())
            .expect("standard table is valid")
    }
    /// Standard DC chroma table.
    pub fn std_dc_chroma() -> Self {
        Self::new(crate::consts::STD_DC_CHROMA_BITS, crate::consts::STD_DC_CHROMA_VALS.to_vec())
            .expect("standard table is valid")
    }
    /// Standard AC luma table.
    pub fn std_ac_luma() -> Self {
        Self::new(crate::consts::STD_AC_LUMA_BITS, crate::consts::STD_AC_LUMA_VALS.to_vec())
            .expect("standard table is valid")
    }
    /// Standard AC chroma table.
    pub fn std_ac_chroma() -> Self {
        Self::new(crate::consts::STD_AC_CHROMA_BITS, crate::consts::STD_AC_CHROMA_VALS.to_vec())
            .expect("standard table is valid")
    }
}

/// Per-symbol (code, length) lookup used while encoding.
#[derive(Debug, Clone)]
pub struct HuffEncoder {
    code: [u16; 256],
    len: [u8; 256],
}

impl HuffEncoder {
    /// Derives canonical codes from a table (T.81 Annex C).
    pub fn from_table(t: &HuffTable) -> Result<Self> {
        let mut code = [0u16; 256];
        let mut len = [0u8; 256];
        let mut next_code = 0u32;
        let mut k = 0usize;
        for l in 1..=16u32 {
            for _ in 0..t.bits[(l - 1) as usize] {
                let sym = t.vals[k] as usize;
                if len[sym] != 0 {
                    return Err(Error::BadHuffman(format!("duplicate symbol {sym}")));
                }
                if next_code >= 1 << l {
                    return Err(Error::BadHuffman("code overflow".into()));
                }
                code[sym] = next_code as u16;
                len[sym] = l as u8;
                next_code += 1;
                k += 1;
            }
            next_code <<= 1;
        }
        Ok(Self { code, len })
    }

    /// Emits the code for `symbol`.
    #[inline]
    pub fn encode(&self, w: &mut BitWriter, symbol: u8) {
        let l = self.len[symbol as usize];
        debug_assert!(l > 0, "symbol {symbol:#04x} has no code");
        w.put_bits(u32::from(self.code[symbol as usize]), u32::from(l));
    }

    /// Code length for a symbol (0 if absent).
    #[inline]
    pub fn code_len(&self, symbol: u8) -> u8 {
        self.len[symbol as usize]
    }
}

const LOOKUP_BITS: u32 = 9;

/// Fast Huffman decoder: a 9-bit first-level lookup with slow-path fallback
/// for longer codes.
#[derive(Debug, Clone)]
pub struct HuffDecoder {
    /// lookup[prefix] = (symbol, length) for codes <= LOOKUP_BITS.
    lookup: Vec<(u8, u8)>,
    /// mincode/maxcode/valptr per length for the canonical slow path.
    mincode: [i32; 17],
    maxcode: [i32; 17],
    valptr: [usize; 17],
    vals: Vec<u8>,
}

impl HuffDecoder {
    /// Builds decoding structures from a canonical table.
    pub fn from_table(t: &HuffTable) -> Result<Self> {
        let mut mincode = [0i32; 17];
        let mut maxcode = [-1i32; 17];
        let mut valptr = [0usize; 17];
        let mut code = 0i32;
        let mut k = 0usize;
        for l in 1..=16usize {
            if t.bits[l - 1] > 0 {
                valptr[l] = k;
                mincode[l] = code;
                code += i32::from(t.bits[l - 1]);
                k += t.bits[l - 1] as usize;
                maxcode[l] = code - 1;
            } else {
                maxcode[l] = -1;
            }
            code <<= 1;
        }
        // First-level lookup table.
        let mut lookup = vec![(0u8, 0u8); 1 << LOOKUP_BITS];
        let mut c = 0u32;
        let mut idx = 0usize;
        for l in 1..=16u32 {
            for _ in 0..t.bits[(l - 1) as usize] {
                if l <= LOOKUP_BITS {
                    let prefix = c << (LOOKUP_BITS - l);
                    let n = 1u32 << (LOOKUP_BITS - l);
                    for p in prefix..prefix + n {
                        lookup[p as usize] = (t.vals[idx], l as u8);
                    }
                }
                c += 1;
                idx += 1;
            }
            c <<= 1;
        }
        Ok(Self { lookup, mincode, maxcode, valptr, vals: t.vals.clone() })
    }

    /// Decodes one symbol from the bit reader.
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u8> {
        let peek = r.peek_bits(LOOKUP_BITS)?;
        let (sym, len) = self.lookup[peek as usize];
        if len > 0 {
            r.consume(u32::from(len))?;
            return Ok(sym);
        }
        // Slow path: codes longer than LOOKUP_BITS.
        let mut code = r.get_bits(LOOKUP_BITS)? as i32;
        let mut l = LOOKUP_BITS as usize;
        loop {
            if l > 16 {
                return Err(Error::CorruptData("invalid Huffman code".into()));
            }
            if self.maxcode[l] >= 0 && code <= self.maxcode[l] {
                let off = (code - self.mincode[l]) as usize;
                return Ok(self.vals[self.valptr[l] + off]);
            }
            code = (code << 1) | r.get_bit()? as i32;
            l += 1;
        }
    }
}

/// Builds an optimal length-limited (<=16 bit) Huffman table from symbol
/// frequencies, following libjpeg's `jpeg_gen_optimal_table`.
///
/// `freq` has one slot per symbol (up to 256). Symbols with zero frequency
/// get no code. At least one symbol must have nonzero frequency.
pub fn gen_optimal_table(freq_in: &[u32]) -> Result<HuffTable> {
    const MAX_CLEN: usize = 32;
    let nsyms = freq_in.len().min(256);
    // One extra pseudo-symbol (257th) with freq 1 guarantees no real symbol
    // gets the all-ones code and that at least two symbols exist.
    let mut freq = vec![0i64; nsyms + 1];
    for (f, &v) in freq.iter_mut().zip(freq_in.iter()) {
        *f = i64::from(v);
    }
    freq[nsyms] = 1;

    let mut codesize = vec![0usize; nsyms + 1];
    let mut others = vec![-1i64; nsyms + 1];

    loop {
        // Find the two smallest nonzero frequencies (c1 lowest, prefer
        // higher symbol index on ties like libjpeg).
        let mut c1: i64 = -1;
        let mut v = i64::MAX;
        for (i, &f) in freq.iter().enumerate() {
            if f != 0 && f <= v {
                v = f;
                c1 = i as i64;
            }
        }
        let mut c2: i64 = -1;
        v = i64::MAX;
        for (i, &f) in freq.iter().enumerate() {
            if f != 0 && f <= v && i as i64 != c1 {
                v = f;
                c2 = i as i64;
            }
        }
        if c2 < 0 {
            break; // only one tree left
        }
        let (c1u, c2u) = (c1 as usize, c2 as usize);
        freq[c1u] += freq[c2u];
        freq[c2u] = 0;
        // Increment codesize of everything in c1's tree.
        let mut n = c1u;
        loop {
            codesize[n] += 1;
            if codesize[n] > MAX_CLEN {
                return Err(Error::BadHuffman("code length explosion".into()));
            }
            match others[n] {
                -1 => break,
                next => n = next as usize,
            }
        }
        others[n] = c2;
        let mut n = c2u;
        loop {
            codesize[n] += 1;
            if codesize[n] > MAX_CLEN {
                return Err(Error::BadHuffman("code length explosion".into()));
            }
            match others[n] {
                -1 => break,
                next => n = next as usize,
            }
        }
    }

    // Count codes per length.
    let mut bits = [0i32; MAX_CLEN + 1];
    for (i, &cs) in codesize.iter().enumerate() {
        if cs > 0 {
            let _ = i;
            bits[cs] += 1;
        }
    }

    // JPEG limits code lengths to 16 bits; push overlong codes down
    // (libjpeg's adjustment loop).
    let mut i = MAX_CLEN;
    while i > 16 {
        while bits[i] > 0 {
            let mut j = i - 2;
            while bits[j] == 0 {
                j -= 1;
            }
            bits[i] -= 2;
            bits[i - 1] += 1;
            bits[j + 1] += 2;
            bits[j] -= 1;
        }
        i -= 1;
    }
    // Remove the pseudo-symbol's code (the longest one).
    let mut i = 16;
    while bits[i] == 0 {
        i -= 1;
    }
    bits[i] -= 1;

    let mut out_bits = [0u8; 16];
    for l in 1..=16 {
        out_bits[l - 1] = bits[l] as u8;
    }
    // Emit symbols sorted by (code length, symbol value); exclude the
    // pseudo-symbol (index nsyms).
    let mut vals = Vec::new();
    for l in 1..=MAX_CLEN {
        for (sym, &cs) in codesize.iter().enumerate().take(nsyms) {
            if cs == l {
                vals.push(sym as u8);
            }
        }
    }
    HuffTable::new(out_bits, vals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_tables_build() {
        for t in [
            HuffTable::std_dc_luma(),
            HuffTable::std_dc_chroma(),
            HuffTable::std_ac_luma(),
            HuffTable::std_ac_chroma(),
        ] {
            HuffEncoder::from_table(&t).unwrap();
            HuffDecoder::from_table(&t).unwrap();
        }
    }

    #[test]
    fn encode_decode_roundtrip_standard_table() {
        let t = HuffTable::std_ac_luma();
        let enc = HuffEncoder::from_table(&t).unwrap();
        let dec = HuffDecoder::from_table(&t).unwrap();
        let symbols: Vec<u8> = t.vals.clone();
        let mut w = BitWriter::new();
        for &s in &symbols {
            enc.encode(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &symbols {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn optimal_table_roundtrip() {
        // Skewed frequency distribution over 20 symbols.
        let mut freq = vec![0u32; 256];
        for s in 0..20u32 {
            freq[s as usize] = 1 + (20 - s) * (20 - s) * 7;
        }
        let t = gen_optimal_table(&freq).unwrap();
        let enc = HuffEncoder::from_table(&t).unwrap();
        let dec = HuffDecoder::from_table(&t).unwrap();
        let mut w = BitWriter::new();
        let msg: Vec<u8> = (0..20).cycle().take(500).collect();
        for &s in &msg {
            enc.encode(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &msg {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn optimal_table_assigns_shorter_codes_to_frequent_symbols() {
        let mut freq = vec![0u32; 256];
        freq[0] = 10_000;
        freq[1] = 100;
        freq[2] = 1;
        let t = gen_optimal_table(&freq).unwrap();
        let enc = HuffEncoder::from_table(&t).unwrap();
        assert!(enc.code_len(0) <= enc.code_len(1));
        assert!(enc.code_len(1) <= enc.code_len(2));
    }

    #[test]
    fn optimal_table_single_symbol() {
        let mut freq = vec![0u32; 256];
        freq[42] = 5;
        let t = gen_optimal_table(&freq).unwrap();
        let enc = HuffEncoder::from_table(&t).unwrap();
        assert!(enc.code_len(42) >= 1);
        let dec = HuffDecoder::from_table(&t).unwrap();
        let mut w = BitWriter::new();
        enc.encode(&mut w, 42);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(dec.decode(&mut r).unwrap(), 42);
    }

    #[test]
    fn optimal_table_uniform_256_symbols_respects_length_limit() {
        let freq = vec![7u32; 256];
        let t = gen_optimal_table(&freq).unwrap();
        let total: usize = t.bits.iter().map(|&b| b as usize).sum();
        assert_eq!(total, 256);
        let enc = HuffEncoder::from_table(&t).unwrap();
        for s in 0..=255u8 {
            assert!(enc.code_len(s) >= 8 && enc.code_len(s) <= 16);
        }
    }

    #[test]
    fn rejects_inconsistent_table() {
        let mut bits = [0u8; 16];
        bits[0] = 3; // 3 codes of length 1 violates Kraft
        assert!(HuffTable::new(bits, vec![0, 1, 2]).is_err());
        let mut bits = [0u8; 16];
        bits[1] = 1;
        assert!(HuffTable::new(bits, vec![0, 1]).is_err()); // count mismatch
    }

    #[test]
    fn long_codes_use_slow_path() {
        // Build a table with a 12-bit code (beyond the 9-bit lookup) by
        // making a deep skew.
        let mut freq = vec![0u32; 64];
        for (i, f) in freq.iter_mut().enumerate() {
            *f = 1u32 << (24u32.saturating_sub(i as u32)).min(24);
        }
        let t = gen_optimal_table(&freq).unwrap();
        let enc = HuffEncoder::from_table(&t).unwrap();
        let dec = HuffDecoder::from_table(&t).unwrap();
        let longest = (0..64u8).max_by_key(|&s| enc.code_len(s)).unwrap();
        assert!(enc.code_len(longest) > 9, "need a long code for this test");
        let mut w = BitWriter::new();
        enc.encode(&mut w, longest);
        enc.encode(&mut w, 0);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(dec.decode(&mut r).unwrap(), longest);
        assert_eq!(dec.decode(&mut r).unwrap(), 0);
    }
}
