//! Huffman coding: canonical table representation (the DHT wire format),
//! encoder/decoder table derivation, and optimal table construction from
//! symbol frequencies (the libjpeg `jpeg_gen_optimal_table` algorithm used
//! by `jpegtran -optimize`, which progressive encoding relies on).
//!
//! Decoding is table-driven and two-level: a 10-bit first-level lookup
//! resolves every code of that length or shorter (the overwhelming
//! majority in real streams) to its symbol *and* length in a single
//! probe; longer codes escape to a compact per-prefix second-level table
//! indexed by the remaining bits, so any legal JPEG code (<= 16 bits)
//! decodes in at most two probes with no bit-at-a-time loop.

use crate::bitio::{BitSource, BitWriter};
use crate::error::{Error, Result};

/// A Huffman table in canonical (DHT) form: `bits[l]` = number of codes of
/// length `l + 1`, and `vals` lists symbols in code order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HuffTable {
    /// Count of codes per code length 1..=16.
    pub bits: [u8; 16],
    /// Symbols ordered by increasing code length / code value.
    pub vals: Vec<u8>,
}

impl HuffTable {
    /// Builds a table from DHT-format arrays, validating counts.
    pub fn new(bits: [u8; 16], vals: Vec<u8>) -> Result<Self> {
        let total: usize = bits.iter().map(|&b| b as usize).sum();
        if total != vals.len() {
            return Err(Error::BadHuffman(format!(
                "bits declare {total} codes but {} values supplied",
                vals.len()
            )));
        }
        if total > 256 {
            return Err(Error::BadHuffman("more than 256 codes".into()));
        }
        // Kraft inequality check: the code must be realizable.
        let mut kraft = 0u64;
        for (i, &b) in bits.iter().enumerate() {
            kraft += (b as u64) << (16 - (i + 1));
        }
        if kraft > 1 << 16 {
            return Err(Error::BadHuffman("code lengths violate Kraft inequality".into()));
        }
        Ok(Self { bits, vals })
    }

    /// The standard table constructors (T.81 Annex K).
    pub fn std_dc_luma() -> Self {
        Self::new(crate::consts::STD_DC_LUMA_BITS, crate::consts::STD_DC_LUMA_VALS.to_vec())
            .expect("standard table is valid") // pcr-lint: allow(no-panic-in-hot-path) — Annex K constants
    }
    /// Standard DC chroma table.
    pub fn std_dc_chroma() -> Self {
        Self::new(crate::consts::STD_DC_CHROMA_BITS, crate::consts::STD_DC_CHROMA_VALS.to_vec())
            .expect("standard table is valid") // pcr-lint: allow(no-panic-in-hot-path) — Annex K constants
    }
    /// Standard AC luma table.
    pub fn std_ac_luma() -> Self {
        Self::new(crate::consts::STD_AC_LUMA_BITS, crate::consts::STD_AC_LUMA_VALS.to_vec())
            .expect("standard table is valid") // pcr-lint: allow(no-panic-in-hot-path) — Annex K constants
    }
    /// Standard AC chroma table.
    pub fn std_ac_chroma() -> Self {
        Self::new(crate::consts::STD_AC_CHROMA_BITS, crate::consts::STD_AC_CHROMA_VALS.to_vec())
            .expect("standard table is valid") // pcr-lint: allow(no-panic-in-hot-path) — Annex K constants
    }
}

/// Per-symbol (code, length) lookup used while encoding.
#[derive(Debug, Clone)]
pub struct HuffEncoder {
    code: [u16; 256],
    len: [u8; 256],
}

impl HuffEncoder {
    /// Derives canonical codes from a table (T.81 Annex C).
    pub fn from_table(t: &HuffTable) -> Result<Self> {
        let mut code = [0u16; 256];
        let mut len = [0u8; 256];
        let mut next_code = 0u32;
        let mut k = 0usize;
        for l in 1..=16u32 {
            // pcr-lint: allow(no-panic-in-hot-path) — l in 1..=16 indexes [u8; 16]
            for _ in 0..t.bits[(l - 1) as usize] {
                // `bits` and `vals` are pub, so a hand-built table may
                // declare more codes than it has values: checked lookup.
                let sym = *t.vals.get(k).ok_or_else(|| {
                    Error::BadHuffman("bits declare more codes than vals holds".into())
                })? as usize;
                if len[sym] != 0 { // pcr-lint: allow(no-panic-in-hot-path) — sym is a u8, arrays are [_; 256]
                    return Err(Error::BadHuffman(format!("duplicate symbol {sym}")));
                }
                if next_code >= 1 << l {
                    return Err(Error::BadHuffman("code overflow".into()));
                }
                code[sym] = next_code as u16; // pcr-lint: allow(no-panic-in-hot-path) — sym < 256
                len[sym] = l as u8; // pcr-lint: allow(no-panic-in-hot-path) — sym < 256
                next_code += 1;
                k += 1;
            }
            next_code <<= 1;
        }
        Ok(Self { code, len })
    }

    /// Emits the code for `symbol`.
    #[inline]
    pub fn encode(&self, w: &mut BitWriter, symbol: u8) {
        let l = self.len[symbol as usize]; // pcr-lint: allow(no-panic-in-hot-path) — u8 indexes [_; 256]
        debug_assert!(l > 0, "symbol {symbol:#04x} has no code");
        // pcr-lint: allow(no-panic-in-hot-path) — u8 indexes [_; 256]
        w.put_bits(u32::from(self.code[symbol as usize]), u32::from(l));
    }

    /// Code length for a symbol (0 if absent).
    #[inline]
    pub fn code_len(&self, symbol: u8) -> u8 {
        self.len[symbol as usize] // pcr-lint: allow(no-panic-in-hot-path) — u8 indexes [_; 256]
    }
}

/// First-level lookup width in bits: covers the overwhelming majority of
/// codes in one probe (canonical JPEG tables put their hot symbols in
/// short codes; dense high-quality scans still mostly stay <= 10 bits).
const LOOKUP_BITS: u32 = 10;
/// Longest legal JPEG code; the second level indexes the remaining
/// `MAX_CODE_BITS - LOOKUP_BITS` bits.
const MAX_CODE_BITS: u32 = 16;
/// Marks a first-level entry as an escape into the second-level table.
const ESCAPE: u16 = 0x8000;

/// One decoded symbol+magnitude step (`(symbol, raw bits)`) plus the
/// speculative second step of [`SymbolDecoder::decode_pair`] when taken.
pub type DecodedPair = ((u8, u32), Option<(u8, u32)>);

/// A symbol resolver the scan decoder pulls coefficients through:
/// implemented by the table-driven [`HuffDecoder`] (production) and the
/// retained canonical decoder (tests), so `dentropy`'s scan logic is
/// written once and the bit-exactness suite can swap the primitive.
pub trait SymbolDecoder {
    /// Decodes one Huffman symbol from `r`.
    fn decode_symbol<R: BitSource>(&self, r: &mut R) -> Result<u8>;

    /// Decodes one symbol, then immediately reads `size_of(symbol)` raw
    /// bits (the JPEG magnitude / EOB-run pattern). Semantically
    /// identical to [`SymbolDecoder::decode_symbol`] followed by
    /// `r.get_bits(size_of(sym))` — which is exactly what this default
    /// does; the production decoder overrides it to serve the symbol and
    /// its trailing bits from a single 16-bit peek. `size_of` must return
    /// at most 16.
    #[inline]
    fn decode_then_bits<R: BitSource>(
        &self,
        r: &mut R,
        size_of: impl Fn(u8) -> u32,
    ) -> Result<(u8, u32)> {
        let sym = self.decode_symbol(r)?;
        let v = r.get_bits(size_of(sym))?;
        Ok((sym, v))
    }

    /// Decodes one symbol+bits step and — when `more(symbol)` says the
    /// scan loop would immediately decode another step from the same
    /// table — speculatively decodes that second step too. Semantically
    /// identical to one or two [`SymbolDecoder::decode_then_bits`] calls
    /// (which is exactly what this default does); the production decoder
    /// overrides it to resolve both code+magnitude steps from a single
    /// 32-bit peek with one consume. `more` must be exact: a `true` for a
    /// symbol after which the scan would *not* read another symbol would
    /// over-consume the bit stream.
    #[inline]
    fn decode_pair<R: BitSource>(
        &self,
        r: &mut R,
        size_of: impl Fn(u8) -> u32,
        more: impl Fn(u8) -> bool,
    ) -> Result<DecodedPair> {
        let first = self.decode_then_bits(r, &size_of)?;
        if !more(first.0) {
            return Ok((first, None));
        }
        let second = self.decode_then_bits(r, &size_of)?;
        Ok((first, Some(second)))
    }
}

/// Fast two-level table-driven Huffman decoder.
///
/// `lut1` has one `u16` entry per `LOOKUP_BITS`-bit (10-bit) window:
/// `(len << 8) | symbol` for codes of up to `LOOKUP_BITS` bits, `0` for
/// bit patterns that are no code's prefix, or `ESCAPE | offset` pointing
/// at a second-level block in `lut2` indexed by the following
/// `MAX_CODE_BITS - LOOKUP_BITS` bits (entries again `(len << 8) |
/// symbol` with the *full* code length). Decoding is one peek + one probe
/// for short codes, two for long ones — never a per-bit loop.
#[derive(Debug, Clone)]
pub struct HuffDecoder {
    lut1: [u16; 1 << LOOKUP_BITS],
    lut2: Vec<u16>,
}

impl HuffDecoder {
    /// Builds the two-level lookup from a canonical table.
    pub fn from_table(t: &HuffTable) -> Result<Self> {
        let mut lut1 = [0u16; 1 << LOOKUP_BITS];
        let mut lut2: Vec<u16> = Vec::new();
        let mut c = 0u32;
        let mut idx = 0usize;
        for l in 1..=16u32 {
            // pcr-lint: allow(no-panic-in-hot-path) — l in 1..=16 indexes [u8; 16]
            for _ in 0..t.bits[(l - 1) as usize] {
                if c >= 1 << l {
                    return Err(Error::BadHuffman("code overflow".into()));
                }
                // Checked for the same hand-built-table reason as the encoder.
                let val = *t.vals.get(idx).ok_or_else(|| {
                    Error::BadHuffman("bits declare more codes than vals holds".into())
                })?;
                let entry = (l as u16) << 8 | u16::from(val);
                if l <= LOOKUP_BITS {
                    // All windows starting with this code resolve to it.
                    let first = (c << (LOOKUP_BITS - l)) as usize;
                    let span = 1usize << (LOOKUP_BITS - l);
                    // pcr-lint: allow(no-panic-in-hot-path) — c < 1<<l, so first + span <= 1<<LOOKUP_BITS
                    lut1[first..first + span].fill(entry);
                } else {
                    // Long code: route its first-level prefix to a
                    // second-level block (allocated on first use), then
                    // fill the block's windows for the remaining bits.
                    let prefix = (c >> (l - LOOKUP_BITS)) as usize;
                    // pcr-lint: allow(no-panic-in-hot-path) — prefix < 1<<LOOKUP_BITS since c < 1<<l
                    let base = if lut1[prefix] & ESCAPE != 0 {
                        (lut1[prefix] & !ESCAPE) as usize // pcr-lint: allow(no-panic-in-hot-path) — same prefix bound
                    } else {
                        let base = lut2.len();
                        if base >= (ESCAPE as usize) {
                            return Err(Error::BadHuffman("second-level overflow".into()));
                        }
                        lut2.resize(base + (1 << (MAX_CODE_BITS - LOOKUP_BITS)), 0);
                        lut1[prefix] = ESCAPE | base as u16; // pcr-lint: allow(no-panic-in-hot-path) — same prefix bound
                        base
                    };
                    let rem = c & ((1 << (l - LOOKUP_BITS)) - 1);
                    let first = (rem << (MAX_CODE_BITS - l)) as usize;
                    let span = 1usize << (MAX_CODE_BITS - l);
                    // pcr-lint: allow(no-panic-in-hot-path) — first + span <= the 64-entry block at base
                    lut2[base + first..base + first + span].fill(entry);
                }
                c += 1;
                idx += 1;
            }
            c <<= 1;
        }
        Ok(Self { lut1, lut2 })
    }

    /// Resolves the code at the top of a 16-bit window through both
    /// table levels, returning `(symbol, code_len)`.
    #[inline]
    fn resolve16(&self, w: u32) -> Result<(u8, u32)> {
        debug_assert!(w < 1 << MAX_CODE_BITS);
        // pcr-lint: allow(no-panic-in-hot-path) — a 16-bit window shifted right by 6 is < 1024
        let entry = self.lut1[(w >> (MAX_CODE_BITS - LOOKUP_BITS)) as usize];
        let entry = if entry & ESCAPE == 0 {
            entry
        } else {
            // pcr-lint: allow(no-panic-in-hot-path) — base + 6 masked bits stays in the 64-entry block
            self.lut2[(entry & !ESCAPE) as usize
                + (w & ((1 << (MAX_CODE_BITS - LOOKUP_BITS)) - 1)) as usize]
        };
        if entry == 0 {
            return Err(Error::CorruptData("invalid Huffman code".into()));
        }
        Ok((entry as u8, u32::from(entry >> 8)))
    }

    /// Decodes one symbol from the bit source: at most two table probes.
    #[inline]
    pub fn decode<R: BitSource>(&self, r: &mut R) -> Result<u8> {
        r.prefetch();
        let window = r.peek_bits(LOOKUP_BITS)?;
        // pcr-lint: allow(no-panic-in-hot-path) — peek_bits(10) < 1024 == lut1.len()
        let entry = self.lut1[window as usize];
        if entry & ESCAPE == 0 {
            if entry == 0 {
                return Err(Error::CorruptData("invalid Huffman code".into()));
            }
            r.consume(u32::from(entry >> 8))?;
            return Ok(entry as u8);
        }
        let tail = r.peek_bits(MAX_CODE_BITS)? & ((1 << (MAX_CODE_BITS - LOOKUP_BITS)) - 1);
        // pcr-lint: allow(no-panic-in-hot-path) — base points at a 64-entry block, tail < 64
        let entry = self.lut2[(entry & !ESCAPE) as usize + tail as usize];
        if entry == 0 {
            return Err(Error::CorruptData("invalid Huffman code".into()));
        }
        r.consume(u32::from(entry >> 8))?;
        Ok(entry as u8)
    }
}

impl SymbolDecoder for HuffDecoder {
    #[inline]
    fn decode_symbol<R: BitSource>(&self, r: &mut R) -> Result<u8> {
        self.decode(r)
    }

    /// Fused fast path: one 16-bit peek resolves the code through both
    /// table levels *and*, whenever `len + size <= 16`, the symbol's
    /// trailing raw bits — one refill check and one consume for the whole
    /// decode-coefficient step.
    #[inline]
    fn decode_then_bits<R: BitSource>(
        &self,
        r: &mut R,
        size_of: impl Fn(u8) -> u32,
    ) -> Result<(u8, u32)> {
        r.prefetch();
        let w = r.peek_bits(MAX_CODE_BITS)?;
        let (sym, len) = self.resolve16(w)?;
        let size = size_of(sym);
        if len + size <= MAX_CODE_BITS {
            r.consume(len + size)?;
            let v = (w >> (MAX_CODE_BITS - len - size)) & ((1u32 << size) - 1);
            Ok((sym, v))
        } else {
            r.consume(len)?;
            let v = r.get_bits(size)?;
            Ok((sym, v))
        }
    }

    /// Multi-symbol fast path: a single 32-bit peek resolves *two*
    /// code+magnitude steps — symbol 1, its raw bits, symbol 2, its raw
    /// bits — followed by one consume, when everything fits the window.
    /// Any overflow (long codes, big magnitudes, a source without wide
    /// peeks) falls back to the fused 16-bit path, which is bit-for-bit
    /// the sequence this method must be equivalent to.
    #[inline]
    fn decode_pair<R: BitSource>(
        &self,
        r: &mut R,
        size_of: impl Fn(u8) -> u32,
        more: impl Fn(u8) -> bool,
    ) -> Result<DecodedPair> {
        let Some(w) = r.peek_wide() else {
            // Sources without a 32-bit lookahead: sequential fused steps.
            let first = self.decode_then_bits(r, &size_of)?;
            if !more(first.0) {
                return Ok((first, None));
            }
            let second = self.decode_then_bits(r, &size_of)?;
            return Ok((first, Some(second)));
        };
        let (sym1, len1) = self.resolve16(w >> MAX_CODE_BITS)?;
        let size1 = size_of(sym1);
        let used1 = len1 + size1;
        if used1 > MAX_CODE_BITS {
            // First step spills the 16-bit window: take the two-consume
            // shape the fused path would use, then go sequential.
            r.consume(len1)?;
            let v1 = r.get_bits(size1)?;
            if !more(sym1) {
                return Ok(((sym1, v1), None));
            }
            let second = self.decode_then_bits(r, &size_of)?;
            return Ok(((sym1, v1), Some(second)));
        }
        let v1 = (w >> (32 - used1)) & ((1u32 << size1) - 1);
        if !more(sym1) {
            r.consume(used1)?;
            return Ok(((sym1, v1), None));
        }
        // Second step decoded from the shifted window: after consuming
        // `used1 <= 16` bits, the next 16 bits are still inside `w`.
        let (sym2, len2) = self.resolve16((w << used1) >> MAX_CODE_BITS)?;
        let size2 = size_of(sym2);
        let used2 = len2 + size2;
        if used1 + used2 <= 32 {
            r.consume(used1 + used2)?;
            let v2 = (w >> (32 - used1 - used2)) & ((1u32 << size2) - 1);
            return Ok(((sym1, v1), Some((sym2, v2))));
        }
        // Second step's raw bits spill past the window: consume step one,
        // re-decode step two through the 16-bit path.
        r.consume(used1)?;
        let second = self.decode_then_bits(r, &size_of)?;
        Ok(((sym1, v1), Some(second)))
    }
}

/// Builds an optimal length-limited (<=16 bit) Huffman table from symbol
/// frequencies, following libjpeg's `jpeg_gen_optimal_table`.
///
/// `freq` has one slot per symbol (up to 256). Symbols with zero frequency
/// get no code. At least one symbol must have nonzero frequency.
// pcr-lint: allow(no-panic-in-hot-path) for-next-item — faithful port of
// libjpeg's jpeg_gen_optimal_table: every index is bounded by that
// algorithm's MAX_CLEN/nsyms invariants (codesize/others/freq all have
// nsyms + 1 slots, bits has MAX_CLEN + 1, and the adjustment loops walk
// l in 1..=MAX_CLEN), and the function runs at pack time only.
pub fn gen_optimal_table(freq_in: &[u32]) -> Result<HuffTable> {
    const MAX_CLEN: usize = 32;
    let nsyms = freq_in.len().min(256);
    // One extra pseudo-symbol (257th) with freq 1 guarantees no real symbol
    // gets the all-ones code and that at least two symbols exist.
    let mut freq = vec![0i64; nsyms + 1];
    for (f, &v) in freq.iter_mut().zip(freq_in.iter()) {
        *f = i64::from(v);
    }
    freq[nsyms] = 1;

    let mut codesize = vec![0usize; nsyms + 1];
    let mut others = vec![-1i64; nsyms + 1];

    loop {
        // Find the two smallest nonzero frequencies (c1 lowest, prefer
        // higher symbol index on ties like libjpeg).
        let mut c1: i64 = -1;
        let mut v = i64::MAX;
        for (i, &f) in freq.iter().enumerate() {
            if f != 0 && f <= v {
                v = f;
                c1 = i as i64;
            }
        }
        let mut c2: i64 = -1;
        v = i64::MAX;
        for (i, &f) in freq.iter().enumerate() {
            if f != 0 && f <= v && i as i64 != c1 {
                v = f;
                c2 = i as i64;
            }
        }
        if c2 < 0 {
            break; // only one tree left
        }
        let (c1u, c2u) = (c1 as usize, c2 as usize);
        freq[c1u] += freq[c2u];
        freq[c2u] = 0;
        // Increment codesize of everything in c1's tree.
        let mut n = c1u;
        loop {
            codesize[n] += 1;
            if codesize[n] > MAX_CLEN {
                return Err(Error::BadHuffman("code length explosion".into()));
            }
            match others[n] {
                -1 => break,
                next => n = next as usize,
            }
        }
        others[n] = c2;
        let mut n = c2u;
        loop {
            codesize[n] += 1;
            if codesize[n] > MAX_CLEN {
                return Err(Error::BadHuffman("code length explosion".into()));
            }
            match others[n] {
                -1 => break,
                next => n = next as usize,
            }
        }
    }

    // Count codes per length.
    let mut bits = [0i32; MAX_CLEN + 1];
    for (i, &cs) in codesize.iter().enumerate() {
        if cs > 0 {
            let _ = i;
            bits[cs] += 1;
        }
    }

    // JPEG limits code lengths to 16 bits; push overlong codes down
    // (libjpeg's adjustment loop).
    let mut i = MAX_CLEN;
    while i > 16 {
        while bits[i] > 0 {
            let mut j = i - 2;
            while bits[j] == 0 {
                j -= 1;
            }
            bits[i] -= 2;
            bits[i - 1] += 1;
            bits[j + 1] += 2;
            bits[j] -= 1;
        }
        i -= 1;
    }
    // Remove the pseudo-symbol's code (the longest one).
    let mut i = 16;
    while bits[i] == 0 {
        i -= 1;
    }
    bits[i] -= 1;

    let mut out_bits = [0u8; 16];
    for l in 1..=16 {
        out_bits[l - 1] = bits[l] as u8;
    }
    // Emit symbols sorted by (code length, symbol value); exclude the
    // pseudo-symbol (index nsyms).
    let mut vals = Vec::new();
    for l in 1..=MAX_CLEN {
        for (sym, &cs) in codesize.iter().enumerate().take(nsyms) {
            if cs == l {
                vals.push(sym as u8);
            }
        }
    }
    HuffTable::new(out_bits, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitio::BitReader;
    use crate::reference::ReferenceHuffDecoder;

    #[test]
    fn standard_tables_build() {
        for t in [
            HuffTable::std_dc_luma(),
            HuffTable::std_dc_chroma(),
            HuffTable::std_ac_luma(),
            HuffTable::std_ac_chroma(),
        ] {
            HuffEncoder::from_table(&t).unwrap();
            HuffDecoder::from_table(&t).unwrap();
        }
    }

    #[test]
    fn encode_decode_roundtrip_standard_table() {
        let t = HuffTable::std_ac_luma();
        let enc = HuffEncoder::from_table(&t).unwrap();
        let dec = HuffDecoder::from_table(&t).unwrap();
        let symbols: Vec<u8> = t.vals.clone();
        let mut w = BitWriter::new();
        for &s in &symbols {
            enc.encode(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &symbols {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn optimal_table_roundtrip() {
        // Skewed frequency distribution over 20 symbols.
        let mut freq = vec![0u32; 256];
        for s in 0..20u32 {
            freq[s as usize] = 1 + (20 - s) * (20 - s) * 7;
        }
        let t = gen_optimal_table(&freq).unwrap();
        let enc = HuffEncoder::from_table(&t).unwrap();
        let dec = HuffDecoder::from_table(&t).unwrap();
        let mut w = BitWriter::new();
        let msg: Vec<u8> = (0..20).cycle().take(500).collect();
        for &s in &msg {
            enc.encode(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &msg {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn optimal_table_assigns_shorter_codes_to_frequent_symbols() {
        let mut freq = vec![0u32; 256];
        freq[0] = 10_000;
        freq[1] = 100;
        freq[2] = 1;
        let t = gen_optimal_table(&freq).unwrap();
        let enc = HuffEncoder::from_table(&t).unwrap();
        assert!(enc.code_len(0) <= enc.code_len(1));
        assert!(enc.code_len(1) <= enc.code_len(2));
    }

    #[test]
    fn optimal_table_single_symbol() {
        let mut freq = vec![0u32; 256];
        freq[42] = 5;
        let t = gen_optimal_table(&freq).unwrap();
        let enc = HuffEncoder::from_table(&t).unwrap();
        assert!(enc.code_len(42) >= 1);
        let dec = HuffDecoder::from_table(&t).unwrap();
        let mut w = BitWriter::new();
        enc.encode(&mut w, 42);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(dec.decode(&mut r).unwrap(), 42);
    }

    #[test]
    fn optimal_table_uniform_256_symbols_respects_length_limit() {
        let freq = vec![7u32; 256];
        let t = gen_optimal_table(&freq).unwrap();
        let total: usize = t.bits.iter().map(|&b| b as usize).sum();
        assert_eq!(total, 256);
        let enc = HuffEncoder::from_table(&t).unwrap();
        for s in 0..=255u8 {
            assert!(enc.code_len(s) >= 8 && enc.code_len(s) <= 16);
        }
    }

    #[test]
    fn rejects_inconsistent_table() {
        let mut bits = [0u8; 16];
        bits[0] = 3; // 3 codes of length 1 violates Kraft
        assert!(HuffTable::new(bits, vec![0, 1, 2]).is_err());
        let mut bits = [0u8; 16];
        bits[1] = 1;
        assert!(HuffTable::new(bits, vec![0, 1]).is_err()); // count mismatch
    }

    #[test]
    fn long_codes_use_second_level() {
        // Build a table with a 12-bit code (beyond the 8-bit first level)
        // by making a deep skew.
        let mut freq = vec![0u32; 64];
        for (i, f) in freq.iter_mut().enumerate() {
            *f = 1u32 << (24u32.saturating_sub(i as u32)).min(24);
        }
        let t = gen_optimal_table(&freq).unwrap();
        let enc = HuffEncoder::from_table(&t).unwrap();
        let dec = HuffDecoder::from_table(&t).unwrap();
        let longest = (0..64u8).max_by_key(|&s| enc.code_len(s)).unwrap();
        assert!(enc.code_len(longest) > 8, "need a long code for this test");
        let mut w = BitWriter::new();
        enc.encode(&mut w, longest);
        enc.encode(&mut w, 0);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(dec.decode(&mut r).unwrap(), longest);
        assert_eq!(dec.decode(&mut r).unwrap(), 0);
    }

    /// `decode_pair`'s wide-window fast path, its sequential fallback on
    /// the reference reader, and plain `decode_then_bits` steps must all
    /// produce the identical (symbol, bits) sequence — over standard and
    /// randomized tables, with AC-style magnitude bits attached.
    #[test]
    fn pair_decode_matches_sequential_steps() {
        let size_of = |s: u8| u32::from(s & 0x0F);
        let more = |s: u8| s & 0x0F != 0;
        let mut tables = vec![HuffTable::std_ac_luma(), HuffTable::std_ac_chroma()];
        let mut seed = 0x1357_9BDFu32;
        for nsyms in [3usize, 40, 256] {
            let mut freq = vec![0u32; 256];
            freq[0] = 50; // guarantee a size-0 terminator symbol
            for f in freq.iter_mut().take(nsyms).skip(1) {
                seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
                *f = 1 + (seed >> 20);
            }
            tables.push(gen_optimal_table(&freq).unwrap());
        }
        for t in &tables {
            let enc = HuffEncoder::from_table(t).unwrap();
            let dec = HuffDecoder::from_table(t).unwrap();
            // Message: every symbol a few times, magnitude bits attached,
            // ending on a size-0 symbol so `more` is false at the end.
            let mut msg: Vec<(u8, u32)> = Vec::new();
            for &s in t.vals.iter().cycle().take(t.vals.len() * 4) {
                seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
                msg.push((s, seed >> (32 - size_of(s).max(1)) & ((1 << size_of(s)) - 1)));
            }
            let term = *t.vals.iter().find(|&&s| s & 0x0F == 0).expect("size-0 symbol");
            msg.push((term, 0));
            let mut w = BitWriter::new();
            for &(s, v) in &msg {
                enc.encode(&mut w, s);
                w.put_bits(v, size_of(s));
            }
            let bytes = w.finish();

            // Sequential ground truth through the fused 16-bit path.
            let mut r = BitReader::new(&bytes);
            let expect: Vec<(u8, u32)> =
                msg.iter().map(|_| dec.decode_then_bits(&mut r, size_of).unwrap()).collect();
            assert_eq!(expect, msg);

            // Pair decode on the batched reader (wide-peek fast path) and
            // on the reference reader (sequential fallback).
            let mut fast = BitReader::new(&bytes);
            let mut reference = crate::reference::ReferenceBitReader::new(&bytes);
            let mut got_fast = Vec::new();
            let mut got_ref = Vec::new();
            while got_fast.len() < msg.len() {
                let (first, second) = dec.decode_pair(&mut fast, size_of, more).unwrap();
                got_fast.push(first);
                got_fast.extend(second);
                let (first, second) = dec.decode_pair(&mut reference, size_of, more).unwrap();
                got_ref.push(first);
                got_ref.extend(second);
            }
            assert_eq!(got_fast, msg);
            assert_eq!(got_ref, msg);
        }
    }

    /// The two-level LUT decoder and the retained canonical
    /// mincode/maxcode decoder must agree symbol-for-symbol on every
    /// table shape: standard tables, optimal skewed tables (long codes),
    /// and randomized frequency tables.
    #[test]
    fn lut_decode_matches_reference_decode() {
        let mut tables = vec![
            HuffTable::std_dc_luma(),
            HuffTable::std_dc_chroma(),
            HuffTable::std_ac_luma(),
            HuffTable::std_ac_chroma(),
        ];
        let mut seed = 0x2468_ACE1u32;
        for nsyms in [2usize, 17, 64, 200, 256] {
            let mut freq = vec![0u32; 256];
            for f in freq.iter_mut().take(nsyms) {
                seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
                *f = 1 + (seed >> 16) % 10_000;
            }
            tables.push(gen_optimal_table(&freq).unwrap());
        }
        for t in &tables {
            let enc = HuffEncoder::from_table(t).unwrap();
            let fast = HuffDecoder::from_table(t).unwrap();
            let reference = ReferenceHuffDecoder::from_table(t).unwrap();
            // A message covering every symbol several times, shuffled-ish.
            let msg: Vec<u8> =
                (0..6).flat_map(|i| t.vals.iter().cycle().skip(i * 7).take(t.vals.len())).copied().collect();
            let mut w = BitWriter::new();
            for &s in &msg {
                enc.encode(&mut w, s);
            }
            let bytes = w.finish();
            let mut rf = BitReader::new(&bytes);
            let mut rr = BitReader::new(&bytes);
            for &s in &msg {
                assert_eq!(fast.decode(&mut rf).unwrap(), s);
                assert_eq!(reference.decode_symbol(&mut rr).unwrap(), s);
            }
        }
    }
}
