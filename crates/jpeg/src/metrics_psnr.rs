//! Minimal PSNR helper used by codec tests and size/quality tooling.
//!
//! Full image-quality metrics (MSSIM etc.) live in the `pcr-metrics` crate;
//! this small helper exists here so the codec can be tested standalone.

use crate::image::ImageBuf;

/// Peak signal-to-noise ratio in dB between two same-shaped images.
/// Returns `f64::INFINITY` for identical images.
pub fn psnr(a: &ImageBuf, b: &ImageBuf) -> f64 {
    assert_eq!(a.width(), b.width(), "width mismatch");
    assert_eq!(a.height(), b.height(), "height mismatch");
    assert_eq!(a.channels(), b.channels(), "channel mismatch");
    let mse: f64 = a
        .data()
        .iter()
        .zip(b.data().iter())
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum::<f64>()
        / a.data().len() as f64;
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_images_have_infinite_psnr() {
        let img = ImageBuf::from_raw(4, 4, 1, (0..16).collect()).unwrap();
        assert!(psnr(&img, &img).is_infinite());
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let img = ImageBuf::from_raw(4, 4, 1, vec![100; 16]).unwrap();
        let a = ImageBuf::from_raw(4, 4, 1, vec![101; 16]).unwrap();
        let b = ImageBuf::from_raw(4, 4, 1, vec![110; 16]).unwrap();
        assert!(psnr(&img, &a) > psnr(&img, &b));
    }

    #[test]
    fn known_value() {
        // MSE of 1 -> 10*log10(65025) ~= 48.13 dB.
        let img = ImageBuf::from_raw(2, 2, 1, vec![10, 10, 10, 10]).unwrap();
        let noisy = ImageBuf::from_raw(2, 2, 1, vec![11, 9, 11, 9]).unwrap();
        assert!((psnr(&img, &noisy) - 48.13).abs() < 0.01);
    }
}
