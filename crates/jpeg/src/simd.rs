//! Compile-time-dispatched SIMD kernels for the decode hot path, with
//! scalar fallbacks.
//!
//! On `x86_64` these use the SSE2 subset of `core::arch` through
//! `#[target_feature(enable = "sse2")]` functions (value-based
//! intrinsics only, so the kernel bodies are entirely safe code). The
//! crate-level `deny(unsafe_code)` is relaxed only on the five dispatch
//! wrappers below: each carries a one-line `unsafe` call whose sole
//! precondition — SSE2 being present — is a baseline guarantee of the
//! x86_64 target, documented with a `// SAFETY:` comment the
//! static-analysis pass checks for. Every kernel is required to be
//! *bit-identical* to its scalar fallback: the f64 lane operations are
//! IEEE-754 adds/subs/muls in the same order as the scalar code, and
//! the integer kernels reproduce the exact fixed-point arithmetic of
//! [`crate::image`]. The tests in this module and the crate's exactness
//! suite enforce that equivalence, which is what lets the differential
//! fast-vs-reference decoder contract survive the SIMD dispatch.
//!
//! Kernels:
//! * [`add8`]/[`sub8`]/[`scale8`] — whole-`[f64; 8]` vector ops backing
//!   the AAN inverse-DCT column pass in [`crate::dct`];
//! * [`nonzero_mask64`] — natural-order nonzero bitmap of a coefficient
//!   block (AC-refinement correction planning in [`crate::dentropy`]);
//! * [`ycbcr_to_rgb_quad`] — four pixels of BT.601 fixed-point color
//!   conversion for [`crate::sample`]'s row assembly.

// pcr-lint: allow(no-panic-in-hot-path) — scalar fallback indexes [f64; 8] with i from core::array::from_fn, always < 8 for-next-item
/// Lane-wise `a + b` over an `[f64; 8]` (one IDCT column-state vector).
/// Bit-identical to scalar `+` in every lane (IEEE-754 addition).
#[inline]
#[allow(unsafe_code)]
pub fn add8(a: &[f64; 8], b: &[f64; 8]) -> [f64; 8] {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: sse2 is a baseline feature of every x86_64 target.
        unsafe { sse2::add8(a, b) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        core::array::from_fn(|i| a[i] + b[i])
    }
}

// pcr-lint: allow(no-panic-in-hot-path) — scalar fallback indexes [f64; 8] with i from core::array::from_fn, always < 8 for-next-item
/// Lane-wise `a - b` over an `[f64; 8]`. Bit-identical to scalar `-`.
#[inline]
#[allow(unsafe_code)]
pub fn sub8(a: &[f64; 8], b: &[f64; 8]) -> [f64; 8] {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: sse2 is a baseline feature of every x86_64 target.
        unsafe { sse2::sub8(a, b) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        core::array::from_fn(|i| a[i] - b[i])
    }
}

// pcr-lint: allow(no-panic-in-hot-path) — scalar fallback indexes [f64; 8] with i from core::array::from_fn, always < 8 for-next-item
/// Lane-wise `a * s` over an `[f64; 8]`. Bit-identical to scalar `*`.
#[inline]
#[allow(unsafe_code)]
pub fn scale8(a: &[f64; 8], s: f64) -> [f64; 8] {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: sse2 is a baseline feature of every x86_64 target.
        unsafe { sse2::scale8(a, s) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        core::array::from_fn(|i| a[i] * s)
    }
}

/// Natural-order nonzero bitmap of a coefficient block: bit `i` is set
/// iff `block[i] != 0`. Eight wide compares + packs replace 64 scalar
/// load-compare-shift steps.
#[inline]
#[allow(unsafe_code)]
pub fn nonzero_mask64(block: &[i16; 64]) -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: sse2 is a baseline feature of every x86_64 target.
        unsafe { sse2::nonzero_mask64(block) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let mut mask = 0u64;
        for (i, &v) in block.iter().enumerate() {
            mask |= u64::from(v != 0) << i;
        }
        mask
    }
}

// pcr-lint: allow(no-panic-in-hot-path) — scalar fallback indexes three [u8; 4] arrays with i from core::array::from_fn, always < 4 for-next-item
/// Converts four YCbCr pixels to interleaved RGB, bit-identical to four
/// calls of [`crate::image::ycbcr_to_rgb`] (which evaluates the same
/// 16.16 fixed-point products through per-channel lookup tables).
#[inline]
#[allow(unsafe_code)]
pub fn ycbcr_to_rgb_quad(y: [u8; 4], cb: [u8; 4], cr: [u8; 4]) -> [[u8; 3]; 4] {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: sse2 is a baseline feature of every x86_64 target.
        unsafe { sse2::ycbcr_to_rgb_quad(y, cb, cr) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        core::array::from_fn(|i| {
            let (r, g, b) = crate::image::ycbcr_to_rgb(y[i], cb[i], cr[i]);
            [r, g, b]
        })
    }
}

#[cfg(target_arch = "x86_64")]
mod sse2 {
    use core::arch::x86_64::{
        __m128d, __m128i, _mm_add_epi32, _mm_add_pd, _mm_cmpeq_epi16, _mm_cvtsd_f64,
        _mm_cvtsi128_si32, _mm_movemask_epi8, _mm_mul_epu32, _mm_mul_pd, _mm_packs_epi16,
        _mm_set1_epi32, _mm_set1_pd, _mm_set_epi16, _mm_set_epi32, _mm_set_pd, _mm_setzero_si128,
        _mm_shuffle_epi32, _mm_srai_epi32, _mm_srli_si128, _mm_sub_pd, _mm_unpackhi_pd,
        _mm_unpacklo_epi32,
    };

    /// BT.601 full-range chroma multipliers, 16.16 fixed point — the
    /// same constants [`crate::image`] bakes into its offset tables.
    const R_CR_MUL: i32 = 91_881; // 1.402
    const B_CB_MUL: i32 = 116_130; // 1.772
    const G_CB_MUL: i32 = -22_554; // -0.344136
    const G_CR_MUL: i32 = -46_802; // -0.714136

    // pcr-lint: allow(no-panic-in-hot-path) — i steps 0, 2, 4, 6, so i + 1 <= 7 inside the [f64; 8] lanes for-next-item
    #[target_feature(enable = "sse2")]
    #[inline]
    pub fn add8(a: &[f64; 8], b: &[f64; 8]) -> [f64; 8] {
        let mut out = [0.0f64; 8];
        let mut i = 0;
        while i < 8 {
            let v = _mm_add_pd(_mm_set_pd(a[i + 1], a[i]), _mm_set_pd(b[i + 1], b[i]));
            (out[i], out[i + 1]) = unpack_pd(v);
            i += 2;
        }
        out
    }

    // pcr-lint: allow(no-panic-in-hot-path) — i steps 0, 2, 4, 6, so i + 1 <= 7 inside the [f64; 8] lanes for-next-item
    #[target_feature(enable = "sse2")]
    #[inline]
    pub fn sub8(a: &[f64; 8], b: &[f64; 8]) -> [f64; 8] {
        let mut out = [0.0f64; 8];
        let mut i = 0;
        while i < 8 {
            let v = _mm_sub_pd(_mm_set_pd(a[i + 1], a[i]), _mm_set_pd(b[i + 1], b[i]));
            (out[i], out[i + 1]) = unpack_pd(v);
            i += 2;
        }
        out
    }

    // pcr-lint: allow(no-panic-in-hot-path) — i steps 0, 2, 4, 6, so i + 1 <= 7 inside the [f64; 8] lanes for-next-item
    #[target_feature(enable = "sse2")]
    #[inline]
    pub fn scale8(a: &[f64; 8], s: f64) -> [f64; 8] {
        let sv = _mm_set1_pd(s);
        let mut out = [0.0f64; 8];
        let mut i = 0;
        while i < 8 {
            let v = _mm_mul_pd(_mm_set_pd(a[i + 1], a[i]), sv);
            (out[i], out[i + 1]) = unpack_pd(v);
            i += 2;
        }
        out
    }

    /// Splits a `__m128d` back into its two lanes.
    #[target_feature(enable = "sse2")]
    #[inline]
    fn unpack_pd(v: __m128d) -> (f64, f64) {
        (_mm_cvtsd_f64(v), _mm_cvtsd_f64(_mm_unpackhi_pd(v, v)))
    }

    #[target_feature(enable = "sse2")]
    #[inline]
    pub fn nonzero_mask64(block: &[i16; 64]) -> u64 {
        let mut mask = 0u64;
        let mut c = 0;
        while c < 64 {
            let zero = _mm_setzero_si128();
            // Two 8-lane compares against zero, packed to 16 sign bytes:
            // lane i of the pack is 0xFF iff coefficient c + i == 0.
            let eq_lo = _mm_cmpeq_epi16(load8(block, c), zero);
            let eq_hi = _mm_cmpeq_epi16(load8(block, c + 8), zero);
            let zeros = _mm_movemask_epi8(_mm_packs_epi16(eq_lo, eq_hi)) as u32;
            mask |= u64::from(!zeros & 0xFFFF) << c;
            c += 16;
        }
        mask
    }

    // pcr-lint: allow(no-panic-in-hot-path) — callers pass at in {0, 16, 32, 48} plus 8, so at + 7 <= 63 inside the [i16; 64] block for-next-item
    /// Loads `block[at..at + 8]` into eight i16 lanes.
    #[target_feature(enable = "sse2")]
    #[inline]
    fn load8(block: &[i16; 64], at: usize) -> __m128i {
        _mm_set_epi16(
            block[at + 7],
            block[at + 6],
            block[at + 5],
            block[at + 4],
            block[at + 3],
            block[at + 2],
            block[at + 1],
            block[at],
        )
    }

    // pcr-lint: allow(no-panic-in-hot-path) — literal lane indices 0..=3 into [u8; 4] inputs and [i32; 4] lane extracts for-next-item
    #[target_feature(enable = "sse2")]
    #[inline]
    pub fn ycbcr_to_rgb_quad(y: [u8; 4], cb: [u8; 4], cr: [u8; 4]) -> [[u8; 3]; 4] {
        let yv = _mm_set_epi32(
            i32::from(y[3]),
            i32::from(y[2]),
            i32::from(y[1]),
            i32::from(y[0]),
        );
        let cbv = _mm_set_epi32(
            i32::from(cb[3]) - 128,
            i32::from(cb[2]) - 128,
            i32::from(cb[1]) - 128,
            i32::from(cb[0]) - 128,
        );
        let crv = _mm_set_epi32(
            i32::from(cr[3]) - 128,
            i32::from(cr[2]) - 128,
            i32::from(cr[1]) - 128,
            i32::from(cr[0]) - 128,
        );
        let half = _mm_set1_epi32(1 << 15);
        // r = y + ((91881 * (cr - 128) + 2^15) >> 16), etc. The products
        // stay well inside i32 (|mul| < 2^17, |chroma| <= 128), so the
        // low-32 lanes of the unsigned multiply equal the signed result.
        let r_off = _mm_srai_epi32::<16>(_mm_add_epi32(mullo32(crv, R_CR_MUL), half));
        let b_off = _mm_srai_epi32::<16>(_mm_add_epi32(mullo32(cbv, B_CB_MUL), half));
        let g_off = _mm_srai_epi32::<16>(_mm_add_epi32(
            _mm_add_epi32(mullo32(cbv, G_CB_MUL), mullo32(crv, G_CR_MUL)),
            half,
        ));
        let r = extract4(_mm_add_epi32(yv, r_off));
        let g = extract4(_mm_add_epi32(yv, g_off));
        let b = extract4(_mm_add_epi32(yv, b_off));
        core::array::from_fn(|i| {
            [
                r[i].clamp(0, 255) as u8,
                g[i].clamp(0, 255) as u8,
                b[i].clamp(0, 255) as u8,
            ]
        })
    }

    /// Lane-wise `v * c` keeping the low 32 bits, SSE2-style:
    /// `_mm_mul_epu32` multiplies even lanes to 64 bits; odd lanes go
    /// through a 4-byte shift. The low 32 bits of an unsigned product
    /// equal those of the signed one, which is all the callers keep.
    #[target_feature(enable = "sse2")]
    #[inline]
    fn mullo32(v: __m128i, c: i32) -> __m128i {
        let cv = _mm_set1_epi32(c);
        let even = _mm_mul_epu32(v, cv);
        let odd = _mm_mul_epu32(_mm_srli_si128::<4>(v), cv);
        // Keep lanes {0, 2} of each 64-bit product pair and reinterleave.
        _mm_unpacklo_epi32(
            _mm_shuffle_epi32::<0b00_00_10_00>(even),
            _mm_shuffle_epi32::<0b00_00_10_00>(odd),
        )
    }

    /// Extracts the four i32 lanes.
    #[target_feature(enable = "sse2")]
    #[inline]
    fn extract4(v: __m128i) -> [i32; 4] {
        [
            _mm_cvtsi128_si32(v),
            _mm_cvtsi128_si32(_mm_shuffle_epi32::<0b01>(v)),
            _mm_cvtsi128_si32(_mm_shuffle_epi32::<0b10>(v)),
            _mm_cvtsi128_si32(_mm_shuffle_epi32::<0b11>(v)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_add8(a: &[f64; 8], b: &[f64; 8]) -> [f64; 8] {
        core::array::from_fn(|i| a[i] + b[i])
    }
    fn scalar_sub8(a: &[f64; 8], b: &[f64; 8]) -> [f64; 8] {
        core::array::from_fn(|i| a[i] - b[i])
    }
    fn scalar_scale8(a: &[f64; 8], s: f64) -> [f64; 8] {
        core::array::from_fn(|i| a[i] * s)
    }

    #[test]
    fn f64_lanes_bit_identical_to_scalar() {
        let mut seed = 0x9E37_79B9u64;
        for _ in 0..200 {
            let mut next = || {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                // Spread across magnitudes, including negatives and tiny values.
                ((seed >> 11) as f64 / (1u64 << 40) as f64 - 4.0) * 1e3
            };
            let a: [f64; 8] = core::array::from_fn(|_| next());
            let b: [f64; 8] = core::array::from_fn(|_| next());
            let s = next();
            assert_eq!(add8(&a, &b).map(f64::to_bits), scalar_add8(&a, &b).map(f64::to_bits));
            assert_eq!(sub8(&a, &b).map(f64::to_bits), scalar_sub8(&a, &b).map(f64::to_bits));
            assert_eq!(
                scale8(&a, s).map(f64::to_bits),
                scalar_scale8(&a, s).map(f64::to_bits)
            );
        }
    }

    #[test]
    fn nonzero_mask_matches_scalar() {
        let mut block = [0i16; 64];
        assert_eq!(nonzero_mask64(&block), 0);
        block[0] = 1;
        block[7] = -1;
        block[8] = i16::MIN;
        block[15] = i16::MAX;
        block[31] = 3;
        block[63] = -7;
        let mut expect = 0u64;
        for (i, &v) in block.iter().enumerate() {
            expect |= u64::from(v != 0) << i;
        }
        assert_eq!(nonzero_mask64(&block), expect);
        // Randomized sweep.
        let mut seed = 12345u32;
        for _ in 0..200 {
            let mut block = [0i16; 64];
            for v in block.iter_mut() {
                seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
                *v = if seed & 3 == 0 { (seed >> 16) as i16 } else { 0 };
            }
            let mut expect = 0u64;
            for (i, &v) in block.iter().enumerate() {
                expect |= u64::from(v != 0) << i;
            }
            assert_eq!(nonzero_mask64(&block), expect);
        }
    }

    #[test]
    fn ycbcr_quad_matches_scalar_lut_exhaustively_on_grid() {
        // Full cross-product is 2^24; a dense stride plus the extremes
        // covers every carry/clamp edge the fixed-point math has.
        let axis: Vec<u8> =
            (0..=255u16).step_by(5).map(|v| v as u8).chain([1, 127, 128, 129, 254, 255]).collect();
        for &yv in &axis {
            for &cbv in &axis {
                for &crv in &axis {
                    let quad = ycbcr_to_rgb_quad([yv; 4], [cbv; 4], [crv; 4]);
                    let (r, g, b) = crate::image::ycbcr_to_rgb(yv, cbv, crv);
                    for px in quad {
                        assert_eq!(px, [r, g, b], "y={yv} cb={cbv} cr={crv}");
                    }
                }
            }
        }
        // Distinct lanes stay independent.
        let quad = ycbcr_to_rgb_quad([0, 80, 160, 255], [12, 128, 200, 255], [250, 128, 30, 0]);
        for (i, px) in quad.into_iter().enumerate() {
            let (r, g, b) = crate::image::ycbcr_to_rgb(
                [0, 80, 160, 255][i],
                [12, 128, 200, 255][i],
                [250, 128, 30, 0][i],
            );
            assert_eq!(px, [r, g, b]);
        }
    }
}
