//! Marker constants, zigzag tables, and standard quantization matrices
//! (ITU-T T.81 Annex K).

/// Start of Image.
pub const SOI: u8 = 0xD8;
/// End of Image.
pub const EOI: u8 = 0xD9;
/// Start of Scan.
pub const SOS: u8 = 0xDA;
/// Define Quantization Table(s).
pub const DQT: u8 = 0xDB;
/// Define Huffman Table(s).
pub const DHT: u8 = 0xC4;
/// Baseline DCT frame (sequential, Huffman).
pub const SOF0: u8 = 0xC0;
/// Extended sequential DCT frame (Huffman).
pub const SOF1: u8 = 0xC1;
/// Progressive DCT frame (Huffman).
pub const SOF2: u8 = 0xC2;
/// Define Restart Interval.
pub const DRI: u8 = 0xDD;
/// Restart marker base (RST0..RST7 = 0xD0..0xD7).
pub const RST0: u8 = 0xD0;
/// APP0 (JFIF) marker.
pub const APP0: u8 = 0xE0;
/// Comment marker.
pub const COM: u8 = 0xFE;

/// Returns true for RSTn markers.
#[inline]
pub fn is_rst(marker: u8) -> bool {
    (RST0..=0xD7).contains(&marker)
}

/// Zigzag order: `ZIGZAG[i]` is the natural (row-major) index of the i-th
/// coefficient in zigzag scan order. This matches libjpeg's
/// `jpeg_natural_order`.
pub const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27,
    20, 13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58,
    59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// Inverse zigzag: `UNZIGZAG[natural_index]` = zigzag position.
pub const UNZIGZAG: [usize; 64] = {
    let mut inv = [0usize; 64];
    let mut i = 0;
    while i < 64 {
        inv[ZIGZAG[i]] = i;
        i += 1;
    }
    inv
};

/// Standard luminance quantization table (T.81 Table K.1), natural order.
pub const STD_LUMA_QTABLE: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// Standard chrominance quantization table (T.81 Table K.2), natural order.
pub const STD_CHROMA_QTABLE: [u16; 64] = [
    17, 18, 24, 47, 99, 99, 99, 99, //
    18, 21, 26, 66, 99, 99, 99, 99, //
    24, 26, 56, 99, 99, 99, 99, 99, //
    47, 66, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99,
];

/// Standard DC luminance Huffman table code lengths (T.81 Table K.3).
pub const STD_DC_LUMA_BITS: [u8; 16] = [0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0];
/// Standard DC luminance Huffman symbol values.
pub const STD_DC_LUMA_VALS: [u8; 12] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11];
/// Standard DC chrominance Huffman table code lengths (T.81 Table K.4).
pub const STD_DC_CHROMA_BITS: [u8; 16] = [0, 3, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0];
/// Standard DC chrominance Huffman symbol values.
pub const STD_DC_CHROMA_VALS: [u8; 12] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11];

/// Standard AC luminance Huffman table code lengths (T.81 Table K.5).
pub const STD_AC_LUMA_BITS: [u8; 16] = [0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 125];
/// Standard AC luminance Huffman symbol values.
pub const STD_AC_LUMA_VALS: [u8; 162] = [
    0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12, 0x21, 0x31, 0x41, 0x06, 0x13, 0x51, 0x61,
    0x07, 0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xa1, 0x08, 0x23, 0x42, 0xb1, 0xc1, 0x15, 0x52,
    0xd1, 0xf0, 0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0a, 0x16, 0x17, 0x18, 0x19, 0x1a, 0x25,
    0x26, 0x27, 0x28, 0x29, 0x2a, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3a, 0x43, 0x44, 0x45,
    0x46, 0x47, 0x48, 0x49, 0x4a, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59, 0x5a, 0x63, 0x64,
    0x65, 0x66, 0x67, 0x68, 0x69, 0x6a, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79, 0x7a, 0x83,
    0x84, 0x85, 0x86, 0x87, 0x88, 0x89, 0x8a, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99,
    0x9a, 0xa2, 0xa3, 0xa4, 0xa5, 0xa6, 0xa7, 0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4, 0xb5, 0xb6,
    0xb7, 0xb8, 0xb9, 0xba, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7, 0xc8, 0xc9, 0xca, 0xd2, 0xd3,
    0xd4, 0xd5, 0xd6, 0xd7, 0xd8, 0xd9, 0xda, 0xe1, 0xe2, 0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8,
    0xe9, 0xea, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa,
];

/// Standard AC chrominance Huffman table code lengths (T.81 Table K.6).
pub const STD_AC_CHROMA_BITS: [u8; 16] = [0, 2, 1, 2, 4, 4, 3, 4, 7, 5, 4, 4, 0, 1, 2, 119];
/// Standard AC chrominance Huffman symbol values.
pub const STD_AC_CHROMA_VALS: [u8; 162] = [
    0x00, 0x01, 0x02, 0x03, 0x11, 0x04, 0x05, 0x21, 0x31, 0x06, 0x12, 0x41, 0x51, 0x07, 0x61,
    0x71, 0x13, 0x22, 0x32, 0x81, 0x08, 0x14, 0x42, 0x91, 0xa1, 0xb1, 0xc1, 0x09, 0x23, 0x33,
    0x52, 0xf0, 0x15, 0x62, 0x72, 0xd1, 0x0a, 0x16, 0x24, 0x34, 0xe1, 0x25, 0xf1, 0x17, 0x18,
    0x19, 0x1a, 0x26, 0x27, 0x28, 0x29, 0x2a, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3a, 0x43, 0x44,
    0x45, 0x46, 0x47, 0x48, 0x49, 0x4a, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59, 0x5a, 0x63,
    0x64, 0x65, 0x66, 0x67, 0x68, 0x69, 0x6a, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79, 0x7a,
    0x82, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89, 0x8a, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97,
    0x98, 0x99, 0x9a, 0xa2, 0xa3, 0xa4, 0xa5, 0xa6, 0xa7, 0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4,
    0xb5, 0xb6, 0xb7, 0xb8, 0xb9, 0xba, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7, 0xc8, 0xc9, 0xca,
    0xd2, 0xd3, 0xd4, 0xd5, 0xd6, 0xd7, 0xd8, 0xd9, 0xda, 0xe2, 0xe3, 0xe4, 0xe5, 0xe6, 0xe7,
    0xe8, 0xe9, 0xea, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa,
];

/// Scales the standard quantization tables by a libjpeg-compatible quality
/// factor in `[1, 100]`. Quality 50 returns the table unchanged; higher is
/// finer (smaller entries), lower is coarser.
pub fn scale_qtable(base: &[u16; 64], quality: u8) -> [u16; 64] {
    let quality = quality.clamp(1, 100) as i32;
    let scale = if quality < 50 {
        5000 / quality
    } else {
        200 - quality * 2
    };
    let mut out = [0u16; 64];
    for (o, &b) in out.iter_mut().zip(base.iter()) {
        let v = (i32::from(b) * scale + 50) / 100;
        *o = v.clamp(1, 255) as u16;
    }
    out
}

/// Estimates the libjpeg quality factor that produced a (luma) quantization
/// table, mirroring what ImageMagick's `identify -format '%Q'` reports.
///
/// Returns a value in `[1, 100]`.
pub fn estimate_quality(qtable: &[u16; 64]) -> u8 {
    // Exact inversion by search: find the quality whose scaled standard
    // table is closest (L1) to the observed table. 100 candidates x 64
    // entries is cheap and immune to the clamping bias that plagues
    // sum-ratio estimators.
    let mut best_q = 50u8;
    let mut best_d = u64::MAX;
    for q in 1..=100u8 {
        let cand = scale_qtable(&STD_LUMA_QTABLE, q);
        let d: u64 = cand
            .iter()
            .zip(qtable.iter())
            .map(|(&a, &b)| u64::from(a.abs_diff(b)))
            .sum();
        if d < best_d {
            best_d = d;
            best_q = q;
        }
    }
    best_q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for &z in &ZIGZAG {
            assert!(!seen[z], "duplicate natural index {z}");
            seen[z] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unzigzag_inverts_zigzag() {
        for i in 0..64 {
            assert_eq!(UNZIGZAG[ZIGZAG[i]], i);
        }
    }

    #[test]
    fn zigzag_first_diagonals() {
        // First few entries of the classic zigzag walk.
        assert_eq!(&ZIGZAG[..6], &[0, 1, 8, 16, 9, 2]);
        assert_eq!(ZIGZAG[63], 63);
    }

    #[test]
    fn quality_50_is_identity() {
        assert_eq!(scale_qtable(&STD_LUMA_QTABLE, 50), STD_LUMA_QTABLE);
    }

    #[test]
    fn quality_100_is_all_ones() {
        let t = scale_qtable(&STD_LUMA_QTABLE, 100);
        assert!(t.iter().all(|&v| v == 1));
    }

    #[test]
    fn quality_monotone_coarseness() {
        let q25: u32 = scale_qtable(&STD_LUMA_QTABLE, 25).iter().map(|&v| u32::from(v)).sum();
        let q50: u32 = scale_qtable(&STD_LUMA_QTABLE, 50).iter().map(|&v| u32::from(v)).sum();
        let q90: u32 = scale_qtable(&STD_LUMA_QTABLE, 90).iter().map(|&v| u32::from(v)).sum();
        assert!(q25 > q50 && q50 > q90);
    }

    #[test]
    fn quality_estimate_roundtrip() {
        for q in [10u8, 25, 50, 75, 83, 90, 91, 95, 100] {
            let t = scale_qtable(&STD_LUMA_QTABLE, q);
            let est = estimate_quality(&t);
            assert!(
                (i16::from(est) - i16::from(q)).abs() <= 2,
                "quality {q} estimated as {est}"
            );
        }
    }

    #[test]
    fn huffman_table_value_counts_match_bits() {
        let n: usize = STD_AC_LUMA_BITS.iter().map(|&b| b as usize).sum();
        assert_eq!(n, STD_AC_LUMA_VALS.len());
        let n: usize = STD_AC_CHROMA_BITS.iter().map(|&b| b as usize).sum();
        assert_eq!(n, STD_AC_CHROMA_VALS.len());
        let n: usize = STD_DC_LUMA_BITS.iter().map(|&b| b as usize).sum();
        assert_eq!(n, STD_DC_LUMA_VALS.len());
    }
}
