//! Pixel <-> coefficient conversion: color planes, chroma subsampling,
//! block splitting, forward/inverse DCT and quantization.

use crate::dct::{descale, forward_dct_raw, forward_quant_scales, inverse_dct_pixels, inverse_quant_scales};
use crate::error::Result;
use crate::frame::{CoeffPlanes, FrameInfo};
use crate::image::{rgb_to_ycbcr, ycbcr_to_rgb, ImageBuf};

/// A single component's sample plane at component resolution, padded to the
/// allocated block grid (edge replication).
#[derive(Debug, Clone)]
pub struct SamplePlane {
    /// Padded width in samples (alloc_w * 8).
    pub width: usize,
    /// Padded height in samples (alloc_h * 8).
    pub height: usize,
    /// Row-major samples.
    pub data: Vec<u8>,
}

impl SamplePlane {
    fn new(width: usize, height: usize) -> Self {
        Self::with_pool(width, height, &mut Vec::new())
    }

    /// Builds a zeroed plane, reusing buffer capacity from `pool`.
    fn with_pool(width: usize, height: usize, pool: &mut Vec<Vec<u8>>) -> Self {
        let mut data = pool.pop().unwrap_or_default();
        data.clear();
        data.resize(width * height, 0);
        Self { width, height, data }
    }

    /// Returns the sample buffer to `pool` for reuse.
    pub fn recycle_into(self, pool: &mut Vec<Vec<u8>>) {
        pool.push(self.data);
    }

    #[inline]
    pub(crate) fn get(&self, x: usize, y: usize) -> u8 {
        self.data[y * self.width + x]
    }

    #[inline]
    pub(crate) fn set(&mut self, x: usize, y: usize, v: u8) {
        self.data[y * self.width + x] = v;
    }
}

/// Converts an image into per-component sample planes matching `frame`
/// geometry (full-res Y; box-filtered subsampled chroma; edge-padded).
pub fn image_to_planes(img: &ImageBuf, frame: &FrameInfo) -> Result<Vec<SamplePlane>> {
    let w = img.width() as usize;
    let h = img.height() as usize;
    let mut planes: Vec<SamplePlane> = frame
        .components
        .iter()
        .map(|c| SamplePlane::new(c.alloc_w as usize * 8, c.alloc_h as usize * 8))
        .collect();

    if img.channels() == 1 {
        let p = &mut planes[0];
        for y in 0..h {
            for x in 0..w {
                p.set(x, y, img.get(x as u32, y as u32, 0));
            }
        }
    } else {
        // Full-resolution YCbCr first.
        let mut yf = vec![0u8; w * h];
        let mut cbf = vec![0u8; w * h];
        let mut crf = vec![0u8; w * h];
        for yy in 0..h {
            for xx in 0..w {
                let (r, g, b) = (
                    img.get(xx as u32, yy as u32, 0),
                    img.get(xx as u32, yy as u32, 1),
                    img.get(xx as u32, yy as u32, 2),
                );
                let (y, cb, cr) = rgb_to_ycbcr(r, g, b);
                yf[yy * w + xx] = y;
                cbf[yy * w + xx] = cb;
                crf[yy * w + xx] = cr;
            }
        }
        for (ci, comp) in frame.components.iter().enumerate() {
            let src = match ci {
                0 => &yf,
                1 => &cbf,
                _ => &crf,
            };
            let cw = comp.width_px as usize;
            let ch = comp.height_px as usize;
            let sx = u32::from(frame.hmax / comp.h) as usize; // subsample factor
            let sy = u32::from(frame.vmax / comp.v) as usize;
            let p = &mut planes[ci];
            for oy in 0..ch {
                for ox in 0..cw {
                    if sx == 1 && sy == 1 {
                        p.set(ox, oy, src[oy * w + ox]);
                    } else {
                        // Box filter over the sx x sy source window (clamped).
                        let mut sum = 0u32;
                        let mut cnt = 0u32;
                        for dy in 0..sy {
                            for dx in 0..sx {
                                let x = (ox * sx + dx).min(w - 1);
                                let y = (oy * sy + dy).min(h - 1);
                                sum += u32::from(src[y * w + x]);
                                cnt += 1;
                            }
                        }
                        p.set(ox, oy, ((sum + cnt / 2) / cnt) as u8);
                    }
                }
            }
        }
    }

    // Edge-replicate into padding (right and bottom) for clean DCTs.
    for (ci, comp) in frame.components.iter().enumerate() {
        let cw = comp.width_px as usize;
        let ch = comp.height_px as usize;
        let p = &mut planes[ci];
        for y in 0..ch {
            let edge = p.get(cw - 1, y);
            for x in cw..p.width {
                p.set(x, y, edge);
            }
        }
        for y in ch..p.height {
            for x in 0..p.width {
                let v = p.get(x, ch - 1);
                p.set(x, y, v);
            }
        }
    }
    Ok(planes)
}

/// Forward transforms sample planes into quantized coefficients.
///
/// `qtables[tq]` must be present (natural order) for every component. The
/// AAN descale factors are folded into per-table quantization multipliers
/// once ([`forward_quant_scales`]), so quantizing is one multiply and one
/// [`descale`] per coefficient — no division in the block loop.
pub fn planes_to_coeffs(
    planes: &[SamplePlane],
    frame: &FrameInfo,
    qtables: &[Option<[u16; 64]>; 4],
) -> Result<CoeffPlanes> {
    let mut coeffs = CoeffPlanes::new(frame);
    let mut spatial = [0f64; 64];
    let mut freq = [0f64; 64];
    for (ci, comp) in frame.components.iter().enumerate() {
        let q = qtables[comp.tq as usize]
            .ok_or_else(|| crate::error::Error::BadQuant(format!("missing table {}", comp.tq)))?;
        let qm = forward_quant_scales(&q);
        let plane = &planes[ci];
        for brow in 0..comp.alloc_h {
            for bcol in 0..comp.alloc_w {
                for y in 0..8 {
                    let sy = brow as usize * 8 + y;
                    let row = &plane.data[sy * plane.width + bcol as usize * 8..];
                    for x in 0..8 {
                        spatial[y * 8 + x] = f64::from(row[x]) - 128.0;
                    }
                }
                forward_dct_raw(&spatial, &mut freq);
                let block = coeffs.block_mut(frame, ci, brow, bcol);
                for i in 0..64 {
                    block[i] = descale(freq[i] * qm[i]) as i16;
                }
            }
        }
    }
    Ok(coeffs)
}

/// The per-block inverse transform the pixel-reconstruction loop is
/// parameterized over: the production AAN kernel ([`FastBlockIdct`]) or,
/// in the bit-exactness suite, the retained basis-matrix oracle. Both
/// implement the same [`descale`]-based rounding contract, which is what
/// makes their pixel outputs byte-comparable.
pub(crate) trait BlockIdct {
    /// Called once per component with its (natural-order) quantization
    /// table before any [`BlockIdct::transform`] call for that component.
    fn begin_table(&mut self, q: &[u16; 64]);
    /// Dequantizes and inverse transforms one 64-coefficient block into
    /// final clamped pixels (row-major 8x8).
    fn transform(&mut self, coeffs: &[i16], out: &mut [u8; 64]);
}

/// Production kernel: folded dequantization + AAN butterfly with a
/// vectorizable column pass ([`inverse_dct_pixels`]).
#[derive(Debug)]
pub(crate) struct FastBlockIdct {
    dq: [f64; 64],
}

impl Default for FastBlockIdct {
    fn default() -> Self {
        Self { dq: [0.0; 64] }
    }
}

impl BlockIdct for FastBlockIdct {
    fn begin_table(&mut self, q: &[u16; 64]) {
        self.dq = inverse_quant_scales(q);
    }
    #[inline]
    fn transform(&mut self, coeffs: &[i16], out: &mut [u8; 64]) {
        inverse_dct_pixels(coeffs, &self.dq, out);
    }
}

/// Dequantizes and inverse transforms coefficients back into sample planes.
pub fn coeffs_to_planes(
    coeffs: &CoeffPlanes,
    frame: &FrameInfo,
    qtables: &[Option<[u16; 64]>; 4],
) -> Result<Vec<SamplePlane>> {
    coeffs_to_planes_pooled(coeffs, frame, qtables, &mut Vec::new())
}

/// [`coeffs_to_planes`] with plane buffers drawn from (and returnable to,
/// via [`SamplePlane::recycle_into`]) `pool`, so a decode loop reconstructs
/// pixels without per-image plane allocations.
pub fn coeffs_to_planes_pooled(
    coeffs: &CoeffPlanes,
    frame: &FrameInfo,
    qtables: &[Option<[u16; 64]>; 4],
    pool: &mut Vec<Vec<u8>>,
) -> Result<Vec<SamplePlane>> {
    reconstruct_planes_with(coeffs, frame, qtables, pool, &mut FastBlockIdct::default())
}

/// Pixel reconstruction over an injectable per-block kernel: the one copy
/// of the dequantize → IDCT → pixel-store loop, shared by the production
/// path and the reference oracle so their outputs differ only by the
/// kernel under test.
pub(crate) fn reconstruct_planes_with<K: BlockIdct>(
    coeffs: &CoeffPlanes,
    frame: &FrameInfo,
    qtables: &[Option<[u16; 64]>; 4],
    pool: &mut Vec<Vec<u8>>,
    kernel: &mut K,
) -> Result<Vec<SamplePlane>> {
    let mut planes: Vec<SamplePlane> = frame
        .components
        .iter()
        .map(|c| SamplePlane::with_pool(c.alloc_w as usize * 8, c.alloc_h as usize * 8, pool))
        .collect();
    let mut pixels = [0u8; 64];
    for (ci, comp) in frame.components.iter().enumerate() {
        let q = qtables[comp.tq as usize]
            .ok_or_else(|| crate::error::Error::BadQuant(format!("missing table {}", comp.tq)))?;
        kernel.begin_table(&q);
        let p = &mut planes[ci];
        for brow in 0..comp.alloc_h {
            for bcol in 0..comp.alloc_w {
                let block = coeffs.block(frame, ci, brow, bcol);
                kernel.transform(block, &mut pixels);
                for y in 0..8 {
                    let dst = (brow as usize * 8 + y) * p.width + bcol as usize * 8;
                    p.data[dst..dst + 8].copy_from_slice(&pixels[y * 8..y * 8 + 8]);
                }
            }
        }
    }
    Ok(planes)
}

/// Reassembles an [`ImageBuf`] from component planes (nearest-neighbour
/// chroma upsampling).
///
/// Hot-path note: the per-pixel subsample index `(x·h)/hmax` of the naive
/// formulation costs two integer divisions per component per pixel —
/// more than the color math itself. Horizontal maps are precomputed once
/// per image and vertical indices once per row, so the pixel loop is
/// loads, multiplies, and adds only.
pub fn planes_to_image(planes: &[SamplePlane], frame: &FrameInfo) -> Result<ImageBuf> {
    let w = frame.width as usize;
    let h = frame.height as usize;
    if frame.components.len() == 1 {
        let p = &planes[0];
        let mut data = vec![0u8; w * h];
        for (y, out) in data.chunks_exact_mut(w).enumerate() {
            out.copy_from_slice(&p.data[y * p.width..y * p.width + w]);
        }
        return ImageBuf::from_raw(frame.width, frame.height, 1, data);
    }
    // Horizontal subsample maps: None = full resolution (identity).
    let cx_map: Vec<Option<Vec<u32>>> = frame
        .components
        .iter()
        .take(3)
        .map(|comp| {
            if comp.h == frame.hmax {
                None
            } else {
                let (ch, hmax) = (usize::from(comp.h), usize::from(frame.hmax));
                Some((0..w).map(|x| (x * ch / hmax) as u32).collect())
            }
        })
        .collect();
    let mut data = vec![0u8; w * h * 3];
    for (y, out) in data.chunks_exact_mut(w * 3).enumerate() {
        // Per-row vertical indices and row slices per component.
        let mut rows: [&[u8]; 3] = [&[], &[], &[]];
        for (ci, comp) in frame.components.iter().enumerate().take(3) {
            let cy = y * usize::from(comp.v) / usize::from(frame.vmax);
            let p = &planes[ci];
            rows[ci] = &p.data[cy * p.width..(cy + 1) * p.width];
        }
        let sample = |ci: usize, x: usize| -> u8 {
            match &cx_map[ci] {
                None => rows[ci][x],
                Some(map) => rows[ci][map[x] as usize],
            }
        };
        // Four pixels per step through the SIMD quad kernel (bit-identical
        // to the scalar LUT conversion), scalar loop for the tail.
        let mut quads = out.chunks_exact_mut(12);
        let mut x = 0usize;
        for px4 in quads.by_ref() {
            let yv: [u8; 4] = core::array::from_fn(|i| sample(0, x + i));
            let cbv: [u8; 4] = core::array::from_fn(|i| sample(1, x + i));
            let crv: [u8; 4] = core::array::from_fn(|i| sample(2, x + i));
            let rgb = crate::simd::ycbcr_to_rgb_quad(yv, cbv, crv);
            for (px, c) in px4.chunks_exact_mut(3).zip(rgb) {
                px.copy_from_slice(&c);
            }
            x += 4;
        }
        for px in quads.into_remainder().chunks_exact_mut(3) {
            let (r, g, b) = ycbcr_to_rgb(sample(0, x), sample(1, x), sample(2, x));
            px[0] = r;
            px[1] = g;
            px[2] = b;
            x += 1;
        }
    }
    ImageBuf::from_raw(frame.width, frame.height, 3, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::{scale_qtable, STD_CHROMA_QTABLE, STD_LUMA_QTABLE};
    use crate::frame::Subsampling;

    fn gradient_rgb(w: u32, h: u32) -> ImageBuf {
        let mut data = Vec::new();
        for y in 0..h {
            for x in 0..w {
                data.push((x * 255 / w.max(1)) as u8);
                data.push((y * 255 / h.max(1)) as u8);
                data.push(((x + y) * 127 / (w + h).max(1)) as u8);
            }
        }
        ImageBuf::from_raw(w, h, 3, data).unwrap()
    }

    fn qtables(quality: u8) -> [Option<[u16; 64]>; 4] {
        [
            Some(scale_qtable(&STD_LUMA_QTABLE, quality)),
            Some(scale_qtable(&STD_CHROMA_QTABLE, quality)),
            None,
            None,
        ]
    }

    #[test]
    fn pixel_pipeline_roundtrip_high_quality() {
        let img = gradient_rgb(40, 24);
        let frame = FrameInfo::for_encode(40, 24, 3, Subsampling::S444, false).unwrap();
        let q = qtables(95);
        let planes = image_to_planes(&img, &frame).unwrap();
        let coeffs = planes_to_coeffs(&planes, &frame, &q).unwrap();
        let back = coeffs_to_planes(&coeffs, &frame, &q).unwrap();
        let out = planes_to_image(&back, &frame).unwrap();
        // Smooth gradient at q95 should reconstruct closely.
        let mut max_err = 0i32;
        for (a, b) in img.data().iter().zip(out.data().iter()) {
            max_err = max_err.max((i32::from(*a) - i32::from(*b)).abs());
        }
        assert!(max_err <= 14, "max error {max_err}");
    }

    #[test]
    fn gray_pipeline_roundtrip() {
        let mut img = ImageBuf::new(17, 11, 1).unwrap();
        for y in 0..11 {
            for x in 0..17 {
                img.set(x, y, 0, ((x * 13 + y * 7) % 256) as u8);
            }
        }
        let frame = FrameInfo::for_encode(17, 11, 1, Subsampling::S444, false).unwrap();
        let q = qtables(90);
        let planes = image_to_planes(&img, &frame).unwrap();
        let coeffs = planes_to_coeffs(&planes, &frame, &q).unwrap();
        let back = coeffs_to_planes(&coeffs, &frame, &q).unwrap();
        let out = planes_to_image(&back, &frame).unwrap();
        assert_eq!(out.width(), 17);
        assert_eq!(out.height(), 11);
    }

    #[test]
    fn subsampling_reduces_chroma_plane_extent() {
        let img = gradient_rgb(32, 32);
        let frame = FrameInfo::for_encode(32, 32, 3, Subsampling::S420, false).unwrap();
        let planes = image_to_planes(&img, &frame).unwrap();
        assert_eq!(planes[0].width, 32);
        assert_eq!(planes[1].width, 16);
    }

    #[test]
    fn constant_image_has_dc_only_coefficients() {
        let img = ImageBuf::from_raw(16, 16, 3, vec![100; 16 * 16 * 3]).unwrap();
        let frame = FrameInfo::for_encode(16, 16, 3, Subsampling::S420, false).unwrap();
        let q = qtables(75);
        let planes = image_to_planes(&img, &frame).unwrap();
        let coeffs = planes_to_coeffs(&planes, &frame, &q).unwrap();
        for ci in 0..3 {
            let c = &frame.components[ci];
            for row in 0..c.alloc_h {
                for col in 0..c.alloc_w {
                    let b = coeffs.block(&frame, ci, row, col);
                    for &v in &b[1..] {
                        assert_eq!(v, 0);
                    }
                }
            }
        }
    }
}
