//! Scan-boundary discovery and prefix reassembly for progressive streams.
//!
//! The PCR encoder scans the binary representation of a progressive JPEG
//! for the markers that delimit scans (paper section 3.2), records the byte
//! offsets, and later reassembles "header + first N scans + EOI" byte
//! streams that any JPEG decoder renders from the available subset of
//! scans.

use crate::consts::{EOI, SOS};
use crate::error::{Error, Result};
use crate::marker::{Segment, SegmentReader};

/// Byte-level layout of a JPEG stream split at scan boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanLayout {
    /// Bytes `[0, header_len)` hold SOI through the last pre-scan segment
    /// (APPn, DQT, SOF, any global DHT).
    pub header_len: usize,
    /// Per scan: `[start, end)` byte range covering the scan's DHT segments
    /// (if per-scan tables are used), its SOS header, and its entropy data.
    pub scans: Vec<(usize, usize)>,
    /// Total stream length (through EOI if present).
    pub total_len: usize,
}

impl ScanLayout {
    /// Number of scans found.
    pub fn num_scans(&self) -> usize {
        self.scans.len()
    }

    /// Size in bytes of scan `i`'s chunk.
    pub fn scan_size(&self, i: usize) -> usize {
        let (s, e) = self.scans[i];
        e - s
    }

    /// Cumulative bytes required to render scans `0..=i` (header + chunks +
    /// EOI marker).
    pub fn prefix_size(&self, i: usize) -> usize {
        self.header_len + self.scans[..=i].iter().map(|(s, e)| e - s).sum::<usize>() + 2
    }
}

/// Finds scan boundaries in a JPEG stream.
///
/// Each scan chunk starts at the first DHT following the previous scan's
/// entropy data (or at the SOS if tables are global) so that a prefix of
/// chunks is always self-contained.
pub fn split_scans(data: &[u8]) -> Result<ScanLayout> {
    let mut reader = SegmentReader::new(data);
    match reader.next_segment()? {
        Segment::Soi => {}
        _ => return Err(Error::NotJpeg),
    }
    let mut header_len = 0usize;
    let mut scans: Vec<(usize, usize)> = Vec::new();
    // Offset where the current pending chunk (DHTs awaiting their SOS)
    // begins, if any.
    let mut pending_start: Option<usize> = None;
    let mut saw_frame = false;
    let mut total_len = data.len();
    loop {
        let seg_start = reader.pos();
        let seg = match reader.next_segment() {
            Ok(seg) => seg,
            Err(Error::UnexpectedEof) => break,
            Err(e) => return Err(e),
        };
        match seg {
            Segment::Soi => return Err(Error::CorruptData("nested SOI".into())),
            Segment::Eoi => {
                total_len = reader.pos();
                break;
            }
            Segment::Marker { marker, .. } => {
                match marker {
                    crate::consts::DHT | crate::consts::DRI if saw_frame => {
                        // Per-scan table or restart-interval change: belongs
                        // to the upcoming scan chunk, so prefixes stay
                        // self-contained.
                        pending_start.get_or_insert(seg_start);
                    }
                    crate::consts::SOF0 | crate::consts::SOF1 | crate::consts::SOF2 => {
                        saw_frame = true;
                        header_len = reader.pos();
                    }
                    _ => {
                        if !saw_frame || scans.is_empty() && pending_start.is_none() {
                            header_len = reader.pos();
                        }
                    }
                }
            }
            Segment::Sos { .. } => {
                if !saw_frame {
                    return Err(Error::BadScan("SOS before SOF".into()));
                }
                let start = pending_start.take().unwrap_or(seg_start);
                reader.skip_entropy();
                scans.push((start, reader.pos()));
            }
        }
    }
    if scans.is_empty() {
        return Err(Error::BadScan("no scans in stream".into()));
    }
    Ok(ScanLayout { header_len, scans, total_len })
}

/// Rebuilds a decodable JPEG byte stream from the header plus the first
/// `n_scans` scan chunks, terminated with EOI. `n_scans` is clamped to the
/// available count; `n_scans == 0` is rejected.
pub fn assemble_prefix(data: &[u8], layout: &ScanLayout, n_scans: usize) -> Result<Vec<u8>> {
    if n_scans == 0 {
        return Err(Error::BadInput("need at least one scan".into()));
    }
    let n = n_scans.min(layout.scans.len());
    let mut out = Vec::with_capacity(layout.prefix_size(n - 1));
    out.extend_from_slice(&data[..layout.header_len]);
    for &(s, e) in &layout.scans[..n] {
        out.extend_from_slice(&data[s..e]);
    }
    out.extend_from_slice(&[0xFF, EOI]);
    Ok(out)
}

/// Extracts the raw chunk bytes for each scan (used by the PCR encoder when
/// regrouping scans across images).
pub fn scan_chunks<'a>(data: &'a [u8], layout: &ScanLayout) -> Vec<&'a [u8]> {
    layout.scans.iter().map(|&(s, e)| &data[s..e]).collect()
}

/// Quick check that a stream contains an SOS marker at all.
pub fn has_scan(data: &[u8]) -> bool {
    data.windows(2).any(|w| w[0] == 0xFF && w[1] == SOS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::{decode, decode_coeffs};
    use crate::encoder::{encode, EncodeConfig};
    use crate::image::ImageBuf;
    use crate::metrics_psnr::psnr;

    fn test_image(w: u32, h: u32) -> ImageBuf {
        let mut data = Vec::with_capacity((w * h * 3) as usize);
        for y in 0..h {
            for x in 0..w {
                let fx = x as f32 / w as f32;
                let fy = y as f32 / h as f32;
                data.push((128.0 + 90.0 * (fx * 9.0).sin() * (fy * 7.0).cos()) as u8);
                data.push((128.0 + 60.0 * (fx * 5.0).cos()) as u8);
                data.push((128.0 + 50.0 * (fy * 4.0).sin()) as u8);
            }
        }
        ImageBuf::from_raw(w, h, 3, data).unwrap()
    }

    #[test]
    fn split_finds_ten_scans() {
        let img = test_image(64, 64);
        let prog = encode(&img, &EncodeConfig::progressive(85)).unwrap();
        let layout = split_scans(&prog).unwrap();
        assert_eq!(layout.num_scans(), 10);
        assert_eq!(layout.total_len, prog.len());
        // Chunks tile the region between header and EOI exactly.
        let mut pos = layout.header_len;
        for &(s, e) in &layout.scans {
            assert_eq!(s, pos);
            pos = e;
        }
        assert_eq!(pos + 2, prog.len()); // + EOI
    }

    #[test]
    fn full_prefix_equals_original() {
        let img = test_image(48, 48);
        let prog = encode(&img, &EncodeConfig::progressive(85)).unwrap();
        let layout = split_scans(&prog).unwrap();
        let full = assemble_prefix(&prog, &layout, 10).unwrap();
        assert_eq!(full, prog);
    }

    #[test]
    fn prefixes_decode_with_monotone_quality() {
        let img = test_image(64, 64);
        let prog = encode(&img, &EncodeConfig::progressive(90)).unwrap();
        let layout = split_scans(&prog).unwrap();
        let reference = decode(&prog).unwrap();
        let mut last_psnr = 0.0f64;
        for n in [1usize, 2, 5, 10] {
            let prefix = assemble_prefix(&prog, &layout, n).unwrap();
            let img_n = decode(&prefix).unwrap();
            let p = psnr(&reference, &img_n);
            assert!(
                p >= last_psnr - 0.75,
                "PSNR not (weakly) monotone at scan {n}: {p:.2} < {last_psnr:.2}"
            );
            last_psnr = p;
        }
        // Scan 10 prefix is the full stream: infinite PSNR (identical).
        assert!(last_psnr.is_infinite());
    }

    #[test]
    fn prefix_scan1_has_dc_only_luma_ac() {
        let img = test_image(32, 32);
        let prog = encode(&img, &EncodeConfig::progressive(85)).unwrap();
        let layout = split_scans(&prog).unwrap();
        let prefix = assemble_prefix(&prog, &layout, 1).unwrap();
        let d = decode_coeffs(&prefix).unwrap();
        // Scan 1 is DC-only: every AC coefficient must still be zero.
        for ci in 0..3 {
            let c = &d.frame.components[ci];
            for row in 0..c.alloc_h {
                for col in 0..c.alloc_w {
                    let b = d.coeffs.block(&d.frame, ci, row, col);
                    assert!(b[1..].iter().all(|&v| v == 0));
                }
            }
        }
    }

    #[test]
    fn prefix_sizes_are_cumulative() {
        let img = test_image(40, 40);
        let prog = encode(&img, &EncodeConfig::progressive(85)).unwrap();
        let layout = split_scans(&prog).unwrap();
        for n in 1..=10usize {
            let prefix = assemble_prefix(&prog, &layout, n).unwrap();
            assert_eq!(prefix.len(), layout.prefix_size(n - 1));
        }
    }

    #[test]
    fn baseline_has_single_chunk() {
        let img = test_image(24, 24);
        let base = encode(&img, &EncodeConfig::baseline(85)).unwrap();
        let layout = split_scans(&base).unwrap();
        assert_eq!(layout.num_scans(), 1);
        let p = assemble_prefix(&base, &layout, 1).unwrap();
        assert_eq!(p, base);
    }

    #[test]
    fn zero_scan_prefix_rejected() {
        let img = test_image(16, 16);
        let prog = encode(&img, &EncodeConfig::progressive(85)).unwrap();
        let layout = split_scans(&prog).unwrap();
        assert!(assemble_prefix(&prog, &layout, 0).is_err());
    }
}
