//! Failure-injection tests: the decoder must return errors (never panic,
//! never loop) on corrupted, truncated, or bit-flipped streams. The PCR
//! read path depends on graceful handling of arbitrary prefixes.

use pcr_jpeg::{decode, encode, EncodeConfig, ImageBuf};

fn test_image() -> ImageBuf {
    let mut data = Vec::new();
    for y in 0..48u32 {
        for x in 0..48u32 {
            data.push(((x * 5 + y * 3) % 256) as u8);
            data.push(((x + y * 7) % 256) as u8);
            data.push(((x * y) % 256) as u8);
        }
    }
    ImageBuf::from_raw(48, 48, 3, data).unwrap()
}

#[test]
fn decode_survives_every_truncation_length() {
    // Every prefix of a progressive stream must either decode (possibly
    // with reduced quality) or return an error — never panic.
    let prog = encode(&test_image(), &EncodeConfig::progressive(85)).unwrap();
    for len in 0..prog.len() {
        let _ = decode(&prog[..len]);
    }
}

#[test]
fn decode_survives_every_truncation_length_baseline() {
    let base = encode(&test_image(), &EncodeConfig::baseline(85)).unwrap();
    for len in (0..base.len()).step_by(7) {
        let _ = decode(&base[..len]);
    }
}

#[test]
fn decode_survives_single_byte_flips() {
    let prog = encode(&test_image(), &EncodeConfig::progressive(85)).unwrap();
    // Flip each byte position (stride to keep runtime sane) and decode.
    for pos in (0..prog.len()).step_by(3) {
        let mut corrupt = prog.clone();
        corrupt[pos] ^= 0xFF;
        let _ = decode(&corrupt);
    }
}

#[test]
fn decode_survives_zeroed_segments() {
    let base = encode(&test_image(), &EncodeConfig::baseline(85)).unwrap();
    for window in [4usize, 16, 64] {
        for start in (2..base.len().saturating_sub(window)).step_by(31) {
            let mut corrupt = base.clone();
            for b in &mut corrupt[start..start + window] {
                *b = 0;
            }
            let _ = decode(&corrupt);
        }
    }
}

#[test]
fn decode_rejects_pathological_headers() {
    // SOI + SOF with zero components.
    let mut bad = vec![0xFF, 0xD8, 0xFF, 0xC0, 0x00, 0x08, 8, 0, 16, 0, 16, 0];
    bad.extend_from_slice(&[0xFF, 0xD9]);
    assert!(decode(&bad).is_err());

    // Declared segment length pointing past the end.
    let bad = vec![0xFF, 0xD8, 0xFF, 0xDB, 0xFF, 0xFF, 0x00];
    assert!(decode(&bad).is_err());

    // Huffman table with impossible code counts.
    let mut bad = vec![0xFF, 0xD8];
    let mut dht = vec![0x00]; // class 0 table 0
    dht.extend_from_slice(&[255u8; 16]); // 255 codes of every length
    dht.extend_from_slice(&[0u8; 16]);
    bad.extend_from_slice(&[0xFF, 0xC4]);
    bad.extend_from_slice(&((dht.len() + 2) as u16).to_be_bytes());
    bad.extend_from_slice(&dht);
    assert!(decode(&bad).is_err());
}

#[test]
fn huge_declared_dimensions_rejected() {
    // 0xFFFF x 0xFFFF would be ~12GB of coefficient planes if it were
    // allocated with 4:2:0 sampling; the decoder should fail cleanly on
    // the truncated entropy data rather than aborting. We keep dimensions
    // large but allocatable and verify the error path.
    let img = ImageBuf::from_raw(8, 8, 1, vec![128; 64]).unwrap();
    let mut stream = encode(&img, &EncodeConfig::baseline(85)).unwrap();
    // Patch the SOF dimensions to 1024x1024 without providing data.
    let sof = stream
        .windows(2)
        .position(|w| w == [0xFF, 0xC0])
        .expect("SOF present");
    stream[sof + 5] = 0x04; // height 1024
    stream[sof + 6] = 0x00;
    stream[sof + 7] = 0x04; // width 1024
    stream[sof + 8] = 0x00;
    // Either decodes a mostly-empty image or errors; must not panic.
    let _ = decode(&stream);
}

#[test]
fn repeated_markers_and_garbage_between_segments() {
    let base = encode(&test_image(), &EncodeConfig::baseline(85)).unwrap();
    // Duplicate the DQT segment: decoders overwrite tables, fine.
    let dqt = base.windows(2).position(|w| w == [0xFF, 0xDB]).unwrap();
    let len = u16::from_be_bytes([base[dqt + 2], base[dqt + 3]]) as usize + 2;
    let mut doubled = Vec::new();
    doubled.extend_from_slice(&base[..dqt + len]);
    doubled.extend_from_slice(&base[dqt..dqt + len]); // duplicate
    doubled.extend_from_slice(&base[dqt + len..]);
    let out = decode(&doubled).expect("duplicate DQT is harmless");
    assert_eq!(out, decode(&base).unwrap());
}
