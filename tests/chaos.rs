//! Deterministic chaos harness: property tests that run whole loader
//! epochs under randomized — but seed-keyed, hence replayable — storage
//! fault plans and assert the recovery invariants end to end:
//!
//! - the epoch terminates and never panics, whatever the plan injects;
//! - sample accounting is exact: the delivered label multiset plus the
//!   quarantined label multiset equals the dataset's label multiset
//!   (nothing lost, nothing duplicated, nothing silently invented);
//! - degraded records are delivered at an intact shorter prefix: the
//!   delivered group never exceeds the requested group, and the
//!   `degraded` flag is set exactly when the ladder stepped down;
//! - under fault kinds that never corrupt delivered bytes, every
//!   delivered record's images decode **byte-identically** to a clean
//!   truncated-prefix decode of the same record at the same group —
//!   degradation is truncation, not approximation.
//!
//! Replay a failure by pinning `PROPTEST_SEED`; CI's chaos job raises
//! `PROPTEST_CASES` and pins the seed for reproducibility.

use pcr::core::{MetaDb, PcrDatasetBuilder, RecordScratch, SampleMeta};
use pcr::jpeg::ImageBuf;
use pcr::loader::{
    populate_store, DecodeMode, LoaderConfig, ParallelConfig, ParallelLoader, PcrLoader,
    RecordSource, RetryPolicy,
};
use pcr::storage::{DeviceProfile, FaultPlan, ObjectStore};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

const NUM_RECORDS: usize = 10;
const NUM_GROUPS: usize = 10;

/// Shared fixture: building the dataset JPEG-encodes every image, so do
/// it once and give every case its own store populated from it.
fn dataset() -> &'static pcr::core::PcrDataset {
    static DS: OnceLock<pcr::core::PcrDataset> = OnceLock::new();
    DS.get_or_init(|| {
        let mut b = PcrDatasetBuilder::new(2, NUM_GROUPS).with_name_prefix("chaos");
        for i in 0..NUM_RECORDS {
            let mut data = Vec::new();
            for y in 0..24u32 {
                for x in 0..24u32 {
                    data.push(((x * 5 + y * 11 + i as u32 * 13) % 256) as u8);
                    data.push(((x * 2 + y) % 256) as u8);
                    data.push(((x + y * 3) % 256) as u8);
                }
            }
            let img = ImageBuf::from_raw(24, 24, 3, data).unwrap();
            b.add_image(SampleMeta { label: (i % 4) as u32, id: format!("c{i}") }, &img, 85)
                .unwrap();
        }
        b.finish().unwrap()
    })
}

fn faulted_store(plan: FaultPlan) -> ObjectStore {
    let store = ObjectStore::new(DeviceProfile::ram());
    populate_store(&store, dataset());
    store.set_fault_plan(Some(plan));
    store
}

fn expected_labels(db: &MetaDb) -> BTreeMap<u32, u64> {
    let mut m = BTreeMap::new();
    for idx in 0..db.num_records() {
        for &l in db.labels(idx) {
            *m.entry(l).or_insert(0) += 1;
        }
    }
    m
}

fn add_labels(m: &mut BTreeMap<u32, u64>, labels: &[u32]) {
    for &l in labels {
        *m.entry(l).or_insert(0) += 1;
    }
}

/// A fault plan over the full injection surface — including bit flips
/// and corrupt ranges, which can destroy records outright.
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        (any::<u64>(), 0.0f64..0.4, 1u32..3),
        (0.0f64..0.3, 0.0f64..0.2, 0.0f64..0.3),
        (0.0f64..0.3, 0.0f64..0.2),
    )
        .prop_map(|((seed, transient, repeats), (torn, corrupt, bit_flip), (latency, timeout))| {
            FaultPlan {
                seed,
                transient,
                transient_repeats: repeats,
                torn,
                corrupt,
                bit_flip,
                latency,
                timeout,
                ..FaultPlan::default()
            }
        })
}

/// A plan restricted to fault kinds that never alter delivered bytes
/// (errors and latency only): every delivered read is byte-clean, so
/// decoded images must match a clean truncated-prefix decode exactly.
fn arb_clean_bytes_plan() -> impl Strategy<Value = FaultPlan> {
    (any::<u64>(), 0.0f64..0.5, 1u32..3, 0.0f64..0.4, 0.0f64..0.4, 0.0f64..0.3).prop_map(
        |(seed, transient, repeats, torn, latency, timeout)| FaultPlan {
            seed,
            transient,
            transient_repeats: repeats,
            torn,
            latency,
            timeout,
            ..FaultPlan::default()
        },
    )
}

fn retry_policy() -> RetryPolicy {
    RetryPolicy {
        max_retries: 4,
        base_backoff_s: 1e-4,
        max_backoff_s: 1e-2,
        epoch_retry_budget_s: 60.0,
        ..RetryPolicy::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Virtual-time loader under the full fault surface: terminates,
    /// conserves the label multiset, and degrades monotonically.
    #[test]
    fn virtual_epoch_conserves_labels_under_faults(
        plan in arb_plan(),
        epoch in 0u64..4,
        group in 1usize..=NUM_GROUPS,
    ) {
        let ds = dataset();
        let store = faulted_store(plan);
        let cfg = LoaderConfig {
            threads: 3,
            scan_group: group,
            shuffle: true,
            seed: 1,
            decode: DecodeMode::Real,
            retry: retry_policy(),
        };
        let r = PcrLoader::new(&store, &ds.db, cfg).run_epoch(epoch, 0.0);

        let mut delivered = BTreeMap::new();
        for rec in &r.records {
            prop_assert!(rec.delivered_group >= 1 && rec.delivered_group <= group);
            prop_assert_eq!(rec.degraded, rec.delivered_group < group);
            // Real mode: a delivered record actually decoded.
            prop_assert_eq!(rec.images.len(), rec.labels.len());
            add_labels(&mut delivered, &rec.labels);
        }
        prop_assert_eq!(
            r.records.len() + r.faults.quarantined_records as usize,
            ds.db.num_records()
        );
        for (&label, &count) in &r.faults.quarantined_labels {
            *delivered.entry(label).or_insert(0) += count;
        }
        prop_assert_eq!(delivered, expected_labels(&ds.db));
        // The fault report's totals agree with the per-record flags.
        let degraded = r.records.iter().filter(|x| x.degraded).count() as u64;
        prop_assert_eq!(r.faults.degraded_records, degraded);
    }

    /// Byte-exactness of degradation: with no byte-corrupting faults,
    /// every delivered record — degraded or not — decodes identically to
    /// a clean truncated-prefix decode at the delivered group.
    #[test]
    fn degraded_records_decode_byte_identically(
        plan in arb_clean_bytes_plan(),
        group in 2usize..=NUM_GROUPS,
    ) {
        let ds = dataset();
        let store = faulted_store(plan);
        let clean = ObjectStore::new(DeviceProfile::ram());
        populate_store(&clean, ds);
        let cfg = LoaderConfig {
            threads: 2,
            scan_group: group,
            shuffle: false,
            seed: 0,
            decode: DecodeMode::Real,
            retry: retry_policy(),
        };
        let r = PcrLoader::new(&store, &ds.db, cfg).run_epoch(0, 0.0);
        // Deterministic per-site faults (e.g. a timeout keyed to the
        // group-1 plan) can still exhaust the whole ladder, so records
        // may quarantine — but the accounting must reconcile exactly.
        prop_assert_eq!(
            r.records.len() + r.faults.quarantined_records as usize,
            ds.db.num_records()
        );

        let mut scratch = RecordScratch::new();
        for rec in &r.records {
            let plan = ds.db.plan(rec.record, rec.delivered_group);
            let clean_read = clean
                .read(pcr::storage::Clock::Virtual(0.0), plan.name, plan.offset, plan.len)
                .expect("clean store read");
            let clean_images = ds
                .db
                .decode_real(rec.record, &clean_read.data, rec.delivered_group, &mut scratch)
                .expect("clean prefix decodes");
            prop_assert_eq!(&rec.images, &clean_images, "record {}", rec.record);
        }
    }

    /// Wall-clock parallel loader under the full fault surface: the
    /// batch stream terminates and delivers exactly the non-quarantined
    /// labels; the fault report reconciles the rest.
    #[test]
    fn wall_clock_epoch_conserves_labels_under_faults(
        plan in arb_plan(),
        epoch in 0u64..3,
        group in 1usize..=NUM_GROUPS,
    ) {
        let ds = dataset();
        let store = Arc::new(faulted_store(plan));
        let db = Arc::new(ds.db.clone());
        let cfg = ParallelConfig {
            loader: LoaderConfig {
                threads: 3,
                scan_group: group,
                shuffle: true,
                seed: 2,
                decode: DecodeMode::Real,
                retry: retry_policy(),
            },
            batch_size: 4,
            ..ParallelConfig::default()
        };
        let loader = ParallelLoader::new(Arc::clone(&store), db, cfg);
        let stream = loader.spawn_epoch_at(epoch, group);
        let mut delivered = BTreeMap::new();
        for b in stream.batches.iter() {
            prop_assert_eq!(b.images.len(), b.labels.len());
            add_labels(&mut delivered, &b.labels);
        }
        let stats = Arc::clone(&stream.stats);
        stream.join();
        let faults = stats.fault_report();
        for (&label, &count) in &faults.quarantined_labels {
            *delivered.entry(label).or_insert(0) += count;
        }
        prop_assert_eq!(delivered, expected_labels(&ds.db));
    }
}

/// A quiet plan must be a no-op: the epoch result matches a run with no
/// plan installed, field for field — the zero-fault fast path really is
/// untouched.
#[test]
fn quiet_plan_epoch_is_identical_to_no_plan() {
    let ds = dataset();
    // Skip decode: Real mode charges *measured* decode time into the
    // virtual timeline, which legitimately differs run to run. Skip is
    // fully modeled, so the timelines must match bit for bit.
    let cfg = LoaderConfig {
        threads: 2,
        scan_group: 5,
        shuffle: true,
        seed: 3,
        decode: DecodeMode::Skip,
        retry: RetryPolicy::default(),
    };
    let bare = ObjectStore::new(DeviceProfile::ram());
    populate_store(&bare, ds);
    let a = PcrLoader::new(&bare, &ds.db, cfg.clone()).run_epoch(1, 0.0);

    let quiet = ObjectStore::new(DeviceProfile::ram());
    populate_store(&quiet, ds);
    quiet.set_fault_plan(Some(FaultPlan::quiet(99)));
    let b = PcrLoader::new(&quiet, &ds.db, cfg).run_epoch(1, 0.0);

    assert_eq!(a.images, b.images);
    assert_eq!(a.bytes, b.bytes);
    assert!(b.faults.is_clean());
    assert_eq!(
        a.records.iter().map(|r| (r.seq, r.record, r.ready.to_bits())).collect::<Vec<_>>(),
        b.records.iter().map(|r| (r.seq, r.record, r.ready.to_bits())).collect::<Vec<_>>(),
    );
}
