//! Container round-trip: packing a freshly generated dermatology dataset
//! to on-disk shards and streaming it back through `ShardedSource` must
//! be *observationally identical* to the in-memory `MetaDb` path — same
//! record/label multisets, same per-scan-group byte counts — and
//! corrupted shards must be rejected before any loader runs.

use pcr::core::{PcrContainer, PcrDataset};
use pcr::datasets::{to_pcr_dataset, DatasetSpec, Scale, SyntheticDataset};
use pcr::loader::{
    open_container_store, populate_store, DecodeMode, FidelityConfig, FidelityController,
    LoaderConfig, OpenedContainer, ParallelConfig, ParallelLoader, PcrLoader, RecordSource,
    ShardStoreConfig,
};
use pcr::storage::{DeviceProfile, ObjectStore};
use std::path::PathBuf;
use std::sync::Arc;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pcr-roundtrip-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A freshly generated dermatology (HAM10000-like) dataset, encoded once.
fn dermatology() -> (SyntheticDataset, PcrDataset) {
    let ds = SyntheticDataset::generate(&DatasetSpec::ham10000_like(Scale::Tiny));
    let (pcr, _) = to_pcr_dataset(&ds, 4);
    (ds, pcr)
}

fn pack(pcr: &PcrDataset, tag: &str, records_per_shard: usize) -> (PathBuf, OpenedContainer) {
    let dir = tmpdir(tag);
    pcr::core::write_container(pcr, &dir, records_per_shard).expect("pack");
    let opened = open_container_store(&dir, &ShardStoreConfig::default()).expect("open");
    (dir, opened)
}

/// Sorted (record name, labels) pairs delivered by a virtual epoch — the
/// record multiset, not just the label multiset.
fn epoch_records(
    store: &ObjectStore,
    source: &(impl RecordSource + ?Sized),
    names: &dyn Fn(usize) -> String,
    g: usize,
    epoch: u64,
) -> (Vec<(String, Vec<u32>)>, u64) {
    let cfg = LoaderConfig { decode: DecodeMode::Skip, ..LoaderConfig::at_group(g) };
    let result = PcrLoader::over(store, source, cfg).run_epoch(epoch, 0.0);
    let mut pairs: Vec<(String, Vec<u32>)> =
        result.records.iter().map(|r| (names(r.record), r.labels.clone())).collect();
    pairs.sort();
    (pairs, result.bytes)
}

#[test]
fn sharded_epoch_matches_in_memory_loader_exactly() {
    let (_, pcr) = dermatology();
    let (dir, opened) = pack(&pcr, "exact", 3);

    let mem_store = ObjectStore::new(DeviceProfile::nvme_local());
    populate_store(&mem_store, &pcr);

    let shard_names = {
        let source = Arc::clone(&opened.source);
        move |idx: usize| source.record_name(idx).to_string()
    };
    let db = pcr.db.clone();
    let mem_names = move |idx: usize| db.records[idx].name.clone();

    for g in [1usize, 2, 5, 10] {
        for epoch in [0u64, 3] {
            let (sharded, sharded_bytes) =
                epoch_records(&opened.store, &*opened.source, &shard_names, g, epoch);
            let (memory, memory_bytes) =
                epoch_records(&mem_store, &pcr.db, &mem_names, g, epoch);
            assert_eq!(sharded, memory, "record multiset at group {g} epoch {epoch}");
            assert_eq!(sharded_bytes, memory_bytes, "bytes at group {g} epoch {epoch}");
            assert_eq!(
                sharded_bytes,
                pcr.db.bytes_at_group(g),
                "per-group byte count matches the metadata DB"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wall_clock_dynamic_run_from_shards_matches_in_memory_traffic() {
    // The acceptance-criterion path: pack a fresh dermatology dataset,
    // then run a dynamic-fidelity wall-clock training loop from the
    // on-disk shards, and check its per-epoch traffic equals the
    // in-memory loader's under the identical controller trajectory.
    let (_, pcr) = dermatology();
    let (dir, opened) = pack(&pcr, "dynamic", 3);
    let epochs = 5u64;
    let scores = vec![(1, 0.90), (2, 0.96), (5, 0.99), (10, 1.0)];
    let losses = |e: u64| if e == 0 { 1.0 } else { 0.5 }; // plateau after epoch 1

    let run = |loader: ParallelLoader<dyn RecordSource>| {
        let fidelity = FidelityConfig { plateau_window: 1, ..FidelityConfig::default() };
        let mut ctrl = FidelityController::new(fidelity, scores.clone());
        loader.run_dynamic(epochs, &mut ctrl, |e, _| losses(e))
    };

    let cfg = ParallelConfig {
        loader: LoaderConfig { threads: 2, decode: DecodeMode::Skip, ..LoaderConfig::at_group(10) },
        ..ParallelConfig::default()
    };

    let sharded_loader: ParallelLoader<dyn RecordSource> = ParallelLoader::new(
        Arc::clone(&opened.store),
        Arc::clone(&opened.source) as Arc<dyn RecordSource>,
        cfg.clone(),
    );
    let sharded_trace = run(sharded_loader);

    let mem_store = Arc::new(ObjectStore::new(DeviceProfile::nvme_local()));
    populate_store(&mem_store, &pcr);
    let mem_loader: ParallelLoader<dyn RecordSource> = ParallelLoader::new(
        Arc::clone(&mem_store),
        Arc::new(pcr.db.clone()) as Arc<dyn RecordSource>,
        cfg,
    );
    let mem_trace = run(mem_loader);

    assert_eq!(sharded_trace.epochs.len(), epochs as usize);
    assert_eq!(sharded_trace.groups_used(), mem_trace.groups_used());
    assert_eq!(sharded_trace.groups_used(), vec![10, 2], "full quality, then tuned");
    for (s, m) in sharded_trace.epochs.iter().zip(&mem_trace.epochs) {
        assert_eq!(s.scan_group, m.scan_group, "epoch {}", s.epoch);
        assert_eq!(s.bytes_read, m.bytes_read, "epoch {}", s.epoch);
        assert_eq!(s.images, m.images, "epoch {}", s.epoch);
        assert_eq!(s.bytes_read, pcr.db.bytes_at_group(s.scan_group));
    }
    assert!(sharded_trace.total_bytes() < epochs * pcr.db.bytes_at_group(10));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupted_shard_checksum_is_rejected() {
    let (_, pcr) = dermatology();
    let dir = tmpdir("corrupt");
    pcr::core::write_container(&pcr, &dir, 2).expect("pack");

    // Flip a single record byte; the footer CRC still parses fine, so
    // only per-record verification can catch it.
    let container = PcrContainer::open(&dir).expect("open");
    let (_, rec) = container.record(1).expect("record 1");
    let path = container.shard_path(0);
    let mut bytes = std::fs::read(&path).unwrap();
    let victim = rec.offset as usize + rec.len() as usize / 3;
    bytes[victim] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    let err = open_container_store(&dir, &ShardStoreConfig::default()).unwrap_err();
    assert!(matches!(err, pcr::core::Error::Corrupt(_)), "{err:?}");
    assert!(container.verify().is_err(), "verify() agrees");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn restart_marker_containers_roundtrip_end_to_end() {
    // Format-compat matrix for the restart-marker (record version 2)
    // container format. For interval 0 (the legacy layout) and a real
    // restart interval: pack → verify() → stream an epoch → decode.
    // Version-1 and version-2 containers must deliver the same label
    // multiset and decode to images of the same geometry; only v2 may
    // report multiple entropy segments per chunk.
    let ds = SyntheticDataset::generate(&DatasetSpec::ham10000_like(Scale::Tiny));
    let mut delivered: Vec<(u16, Vec<u32>)> = Vec::new();
    for interval in [0u16, 1] {
        let (pcr, _) = pcr::datasets::to_pcr_dataset_restart(&ds, 4, interval);
        let dir = tmpdir(&format!("restart-{interval}"));
        pcr::core::write_container(&pcr, &dir, 3).expect("pack");

        // Integrity: the container CRCs verify regardless of version.
        let container = PcrContainer::open(&dir).expect("open");
        container.verify().expect("verify");
        assert_eq!(container.num_images(), ds.train.len());

        // Record-level metadata: version and per-chunk segment counts.
        let shard_bytes = container.read_shard(0).expect("shard");
        let (_, rec) = container.record(0).expect("record 0");
        let rec_bytes = &shard_bytes[rec.offset as usize..(rec.offset + rec.len()) as usize];
        let parsed = pcr::core::PcrRecord::parse(rec_bytes).expect("parse");
        assert_eq!(parsed.restart_interval(), interval);
        let max_segments = (1..=parsed.num_groups())
            .flat_map(|g| (0..parsed.num_images()).map(move |i| (i, g)))
            .map(|(i, g)| parsed.segment_count(i, g).unwrap())
            .max()
            .unwrap();
        if interval == 0 {
            assert_eq!(max_segments, 1, "marker-less chunks are one segment");
        } else {
            assert!(max_segments > 1, "restart markers split the entropy");
        }

        // Stream a real decode epoch through the sharded source, with
        // segment workers engaged — old and new containers take the
        // same path.
        let opened = open_container_store(&dir, &ShardStoreConfig::default()).expect("store");
        let loader = ParallelLoader::new(
            Arc::clone(&opened.store),
            Arc::clone(&opened.source) as Arc<dyn RecordSource>,
            ParallelConfig { batch_size: 4, segment_workers: 2, ..ParallelConfig::real(2, 10) },
        );
        let stream = loader.spawn_epoch(0);
        let mut labels = Vec::new();
        for b in stream.batches.iter() {
            for img in &b.images {
                assert!(img.width() > 0 && img.height() > 0);
            }
            labels.extend(b.labels);
        }
        stream.join();
        labels.sort_unstable();
        delivered.push((interval, labels));
        std::fs::remove_dir_all(&dir).unwrap();
    }
    assert_eq!(
        delivered[0].1, delivered[1].1,
        "v1 and v2 containers deliver the same label multiset"
    );
}

#[test]
fn container_format_matrix_v1_v2_v3() {
    // Format-compat matrix across *container* format versions: v1 (row
    // footers, plain records), v2 (row footers, restart-marker records),
    // v3 (columnar footers + manifest stats, restart-marker records).
    // Every variant must open, verify, resolve entries identical to the
    // metadata DB, and deliver the same label multiset through both a
    // sequential skip epoch and a segmented-parallel decode epoch.
    use pcr::core::{write_container_versioned, COLUMNAR_VERSION, CONTAINER_VERSION_ROWS};
    let ds = SyntheticDataset::generate(&DatasetSpec::ham10000_like(Scale::Tiny));
    let mut native: Vec<u32> = ds.train.iter().map(|s| s.label).collect();
    native.sort_unstable();

    // (tag, container version, restart interval, expect columnar index)
    let variants: [(&str, u16, u16, bool); 3] = [
        ("v1", CONTAINER_VERSION_ROWS, 0, false),
        ("v2", CONTAINER_VERSION_ROWS, 1, false),
        ("v3", COLUMNAR_VERSION, 1, true),
    ];
    // (sequential epoch bytes, parallel epoch bytes) per variant.
    let mut streamed: Vec<(u64, u64)> = Vec::new();
    for (tag, version, restart, columnar) in variants {
        let (pcr, _) = pcr::datasets::to_pcr_dataset_restart(&ds, 4, restart);
        let dir = tmpdir(&format!("matrix-{tag}"));
        write_container_versioned(&pcr, &dir, 3, version).expect("pack");

        let container = PcrContainer::open(&dir).expect("open");
        container.verify().expect("verify");
        assert_eq!(container.manifest.version, version, "{tag}");
        for shard in &container.shards {
            assert_eq!(shard.is_columnar(), columnar, "{tag}");
        }
        // Format compat: containers packed without a decision log (every
        // pre-audit-plane container) open, verify, and load unchanged,
        // and report the log as absent rather than erroring.
        assert!(
            container.decision_log().expect("absent log is not an error").is_none(),
            "{tag}: no decision log was written"
        );
        // Lazy (v3) and eager (v1/v2) entry resolution see identical
        // metadata: both parse paths reproduce the builder's DB.
        for (i, meta) in pcr.db.records.iter().enumerate() {
            let (_, rec) = container.entry(i).expect("entry");
            assert_eq!(rec.name, meta.name, "{tag} record {i}");
            assert_eq!(rec.labels, meta.labels, "{tag} record {i}");
            assert_eq!(rec.num_images as usize, meta.labels.len(), "{tag} record {i}");
        }

        let opened = open_container_store(&dir, &ShardStoreConfig::default()).expect("store");
        let names = {
            let source = Arc::clone(&opened.source);
            move |idx: usize| source.record_name(idx).to_string()
        };
        let (pairs, seq_bytes) = epoch_records(&opened.store, &*opened.source, &names, 10, 0);
        let mut labels: Vec<u32> = pairs.iter().flat_map(|(_, l)| l.iter().copied()).collect();
        labels.sort_unstable();
        assert_eq!(labels, native, "{tag} label multiset");
        assert_eq!(seq_bytes, pcr.db.bytes_at_group(10), "{tag} bytes vs metadata DB");

        // One segmented-parallel real-decode epoch.
        let loader = ParallelLoader::new(
            Arc::clone(&opened.store),
            Arc::clone(&opened.source) as Arc<dyn RecordSource>,
            ParallelConfig { batch_size: 4, segment_workers: 2, ..ParallelConfig::real(2, 10) },
        );
        let epoch = loader.run_epoch(0);
        assert_eq!(epoch.images, ds.train.len(), "{tag} parallel epoch images");
        streamed.push((seq_bytes, epoch.bytes));
        std::fs::remove_dir_all(&dir).unwrap();
    }
    // v2 and v3 pack byte-identical record encodings; the container
    // format must not change a single byte a loader reads.
    assert_eq!(streamed[1], streamed[2], "row vs columnar delivery");
}

#[test]
fn decision_log_accumulates_across_runs_and_is_covered_by_verify() {
    // The audit plane riding in the container: two dynamic sessions
    // append to one decisions.pcrd, the CRC chain spans both, the
    // container-level verify() covers it — and corrupting the log is
    // caught by verify() while record delivery (both the log's and the
    // shards') stays intact.
    use pcr::core::declog::{DecisionLog, DecisionLogWriter};
    use pcr::metrics::TriggerKind;
    let (_, pcr) = dermatology();
    let (dir, opened) = pack(&pcr, "declog", 3);
    // plateau_window clamps to 2 and needs 2*window observations, so the
    // tune-down lands on epoch 4 — run 5 so it is recorded.
    let epochs = 5u64;
    let scores = vec![(1, 0.90), (2, 0.96), (5, 0.99), (10, 1.0)];

    let cfg = ParallelConfig {
        loader: LoaderConfig { threads: 1, decode: DecodeMode::Skip, ..LoaderConfig::at_group(10) },
        ..ParallelConfig::default()
    };
    let loader: ParallelLoader<dyn RecordSource> = ParallelLoader::new(
        Arc::clone(&opened.store),
        Arc::clone(&opened.source) as Arc<dyn RecordSource>,
        cfg,
    );
    let log_path = dir.join(pcr::core::DECISION_LOG_FILE);
    for session in 0..2u64 {
        let fidelity = FidelityConfig { plateau_window: 1, ..FidelityConfig::default() };
        let mut ctrl = FidelityController::new(fidelity, scores.clone());
        let mut w = DecisionLogWriter::open(&log_path).expect("open log");
        let trace = loader
            .run_dynamic_logged(epochs, &mut ctrl, |e, _| if e == 0 { 1.0 } else { 0.5 }, Some(&mut w))
            .expect("logged run");
        assert_eq!(w.records_written(), epochs, "session {session}");
        assert_eq!(trace.epochs.len(), epochs as usize);
    }

    // Reopen from the artifact alone: both sessions' decisions are
    // there, the chain verifies, and the trace schema round-trips.
    let container = PcrContainer::open(&dir).expect("reopen");
    let log = container.decision_log().expect("read log").expect("log present");
    log.verify().expect("chain spans both sessions");
    container.verify().expect("container verify covers the log");
    assert_eq!(log.len(), 2 * epochs as usize);
    let triggers: Vec<TriggerKind> = log.records().iter().map(|r| r.trigger).collect();
    assert_eq!(triggers[0], TriggerKind::Start, "each run starts at full quality");
    assert_eq!(triggers[epochs as usize], TriggerKind::Start, "second session restarts");
    assert!(triggers.contains(&TriggerKind::Plateau), "the tune-down is recorded");
    // "Why did fidelity change at epoch 2?" — answerable from the log.
    let tuned = log.records().iter().find(|r| r.trigger == TriggerKind::Plateau).unwrap();
    assert_eq!(usize::from(tuned.scan_group), 2, "cheapest group clearing 0.95");
    assert!(!tuned.probe_scores.is_empty(), "probe scores travel with the decision");
    assert!(tuned.bytes_saved() > 0, "the tuned epoch read a shorter prefix");
    assert_eq!(tuned.bytes_full, pcr.db.bytes_at_group(10));
    assert_eq!(tuned.bytes_read, pcr.db.bytes_at_group(2));

    // Corruption: flip one byte in a record body. The strict verify
    // fails; lenient parsing still delivers every decision; and the
    // loaders' own shard path is unaffected.
    let mut bytes = std::fs::read(&log_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&log_path, &bytes).unwrap();
    let err = container.verify().unwrap_err();
    assert!(matches!(err, pcr::core::Error::Corrupt(_)), "{err:?}");
    let damaged = container.decision_log().expect("lenient parse").expect("present");
    assert!(damaged.len() >= epochs as usize, "delivery survives corruption");
    assert!(DecisionLog::parse(&bytes).unwrap().verify().is_err());
    open_container_store(&dir, &ShardStoreConfig::default())
        .expect("shard streaming ignores the audit log");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn metadb_view_survives_disk_roundtrip() {
    // The flattened sharded view carries exactly the metadata the
    // in-memory DB had: same names, labels, group offsets, totals.
    let (_, pcr) = dermatology();
    let (dir, opened) = pack(&pcr, "view", 4);
    let src = &opened.source;
    assert_eq!(src.num_records(), pcr.db.records.len());
    assert_eq!(src.num_images(), pcr.db.num_images());
    assert_eq!(src.num_groups(), pcr.db.num_groups());
    for (i, meta) in pcr.db.records.iter().enumerate() {
        assert_eq!(src.record_name(i), meta.name);
        assert_eq!(src.labels(i), &meta.labels[..]);
        for g in 0..=pcr.db.num_groups() {
            assert_eq!(src.plan(i, g).len, meta.prefix_len(g), "record {i} group {g}");
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
