//! Property-based tests over the core invariants: JPEG round-trip fidelity,
//! lossless transcoding, the PCR prefix property, and loader conservation.

use pcr::core::{PcrRecord, PcrRecordBuilder, SampleMeta};
use pcr::jpeg::{decode, decode_coeffs, encode, to_progressive, EncodeConfig, ImageBuf};
use proptest::prelude::*;

fn arb_image() -> impl Strategy<Value = ImageBuf> {
    // Dimensions that exercise MCU padding paths; contents from a small
    // set of pattern generators rather than raw noise so quality bounds
    // stay meaningful.
    (9u32..80, 9u32..80, 0u32..4, any::<u32>()).prop_map(|(w, h, kind, seed)| {
        let mut data = Vec::with_capacity((w * h * 3) as usize);
        for y in 0..h {
            for x in 0..w {
                let v = match kind {
                    0 => (x * 255 / w) as u8,
                    1 => (((x / 8 + y / 8) % 2) * 200 + 28) as u8,
                    2 => (128.0
                        + 100.0
                            * ((x as f32 * 0.4 + seed as f32 % 7.0)
                                + (y as f32 * 0.3))
                                .sin()) as u8,
                    _ => ((x.wrapping_mul(31).wrapping_add(y.wrapping_mul(17)).wrapping_add(seed))
                        % 256) as u8,
                };
                data.push(v);
                data.push(v.wrapping_add(40));
                data.push(255 - v);
            }
        }
        ImageBuf::from_raw(w, h, 3, data).expect("valid dims")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn jpeg_roundtrip_holds_psnr_floor(img in arb_image()) {
        let bytes = encode(&img, &EncodeConfig::baseline(90)).unwrap();
        let out = decode(&bytes).unwrap();
        prop_assert_eq!(out.width(), img.width());
        prop_assert_eq!(out.height(), img.height());
        let psnr = pcr::jpeg::psnr(&img, &out);
        // Floor covers the worst generator (per-pixel modular noise with
        // inverted chroma, which 4:2:0 subsampling cannot represent);
        // smooth generators land far higher.
        prop_assert!(psnr > 14.0, "psnr {} too low", psnr);
    }

    #[test]
    fn progressive_transcode_is_coefficient_lossless(img in arb_image()) {
        let base = encode(&img, &EncodeConfig::baseline(85)).unwrap();
        let prog = to_progressive(&base).unwrap();
        let a = decode_coeffs(&base).unwrap();
        let b = decode_coeffs(&prog).unwrap();
        prop_assert_eq!(a.qtables, b.qtables);
        // Compare only decoder-visible blocks: baseline interleaved scans
        // also code the MCU padding blocks, progressive AC scans (being
        // non-interleaved) do not — the padding is invisible to any
        // decoder, so equality is required only inside the real grid.
        for (ci, comp) in a.frame.components.iter().enumerate() {
            for row in 0..comp.blocks_h {
                for col in 0..comp.blocks_w {
                    prop_assert_eq!(
                        a.coeffs.block(&a.frame, ci, row, col),
                        b.coeffs.block(&b.frame, ci, row, col),
                        "component {} block ({}, {})", ci, row, col
                    );
                }
            }
        }
        // And the reconstructed pixels are bit-identical.
        prop_assert_eq!(a.to_image().unwrap(), b.to_image().unwrap());
    }

    #[test]
    fn progressive_prefix_quality_is_monotone(img in arb_image()) {
        let prog = encode(&img, &EncodeConfig::progressive(88)).unwrap();
        let layout = pcr::jpeg::split_scans(&prog).unwrap();
        let reference = decode(&prog).unwrap();
        let mut last = -1.0f64;
        for n in 1..=layout.num_scans() {
            let prefix = pcr::jpeg::assemble_prefix(&prog, &layout, n).unwrap();
            let out = decode(&prefix).unwrap();
            let p = pcr::jpeg::psnr(&reference, &out);
            let p_cmp = if p.is_infinite() { 1e9 } else { p };
            prop_assert!(
                p_cmp >= last - 1.0,
                "psnr regressed at scan {}: {} < {}", n, p_cmp, last
            );
            last = p_cmp;
        }
        // Full prefix is the original stream.
        let full = pcr::jpeg::assemble_prefix(&prog, &layout, layout.num_scans()).unwrap();
        prop_assert_eq!(full, prog);
    }

    #[test]
    fn pcr_prefix_property(images in prop::collection::vec(arb_image(), 1..5), cut in 1usize..=10) {
        // Reading bytes [0, offset_for_group(g)) always yields a record
        // with available_groups() == g whose images decode.
        let mut builder = PcrRecordBuilder::with_default_groups();
        for (i, img) in images.iter().enumerate() {
            builder
                .add_image(SampleMeta { label: i as u32, id: format!("p{i}") }, img, 85)
                .unwrap();
        }
        let bytes = builder.build().unwrap();
        let full = PcrRecord::parse(&bytes).unwrap();
        let g = cut.min(full.num_groups());
        let prefix = &bytes[..full.offset_for_group(g)];
        let view = PcrRecord::parse(prefix).unwrap();
        prop_assert_eq!(view.available_groups(), g);
        for (i, img) in images.iter().enumerate().take(view.num_images()) {
            let out = view.decode_image(i, g).unwrap();
            prop_assert_eq!(out.width(), img.width());
            prop_assert_eq!(out.height(), img.height());
        }
        // One byte short of the group boundary must report g-1.
        if full.offset_for_group(g) > full.offset_for_group(g - 1) {
            let short = &bytes[..full.offset_for_group(g) - 1];
            let view = PcrRecord::parse(short).unwrap();
            prop_assert_eq!(view.available_groups(), g - 1);
        }
    }

    #[test]
    fn record_labels_and_ids_roundtrip(labels in prop::collection::vec(0u32..1000, 1..6)) {
        let img = ImageBuf::from_raw(16, 16, 3, vec![99; 16 * 16 * 3]).unwrap();
        let mut builder = PcrRecordBuilder::with_default_groups();
        for (i, &l) in labels.iter().enumerate() {
            builder
                .add_image(SampleMeta { label: l, id: format!("id-{i}-{l}") }, &img, 80)
                .unwrap();
        }
        let bytes = builder.build().unwrap();
        let rec = PcrRecord::parse(&bytes).unwrap();
        prop_assert_eq!(rec.labels(), labels.clone());
        for (i, &l) in labels.iter().enumerate() {
            prop_assert_eq!(rec.meta(i).id, format!("id-{i}-{l}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn epoch_order_is_a_permutation(
        n in 0usize..3000,
        seed in any::<u64>(),
        epoch in any::<u64>(),
    ) {
        // The Feistel shuffle must be a true bijection on 0..n for every
        // (n, seed, epoch) — a single repeated or skipped index silently
        // breaks sample-exactly-once training semantics.
        use pcr::loader::EpochOrder;
        let order = EpochOrder::shuffled(n, seed, epoch);
        prop_assert_eq!(order.num_records(), n);
        let walked: Vec<usize> = order.clone().collect();
        prop_assert_eq!(walked.len(), n);
        // Random access agrees with iteration (the parallel loader uses
        // get(); the sequential loaders iterate).
        for (i, &idx) in walked.iter().enumerate() {
            prop_assert_eq!(order.get(i), idx);
        }
        let mut sorted = walked;
        sorted.sort_unstable();
        let identity: Vec<usize> = (0..n).collect();
        prop_assert_eq!(sorted, identity);
    }

    #[test]
    fn epoch_order_is_deterministic_and_epoch_sensitive(
        n in 2usize..2000,
        seed in any::<u64>(),
        epoch in any::<u64>(),
    ) {
        use pcr::loader::EpochOrder;
        let a: Vec<usize> = EpochOrder::shuffled(n, seed, epoch).collect();
        let b: Vec<usize> = EpochOrder::shuffled(n, seed, epoch).collect();
        // Same (seed, epoch) → same schedule on every loader replica.
        prop_assert_eq!(&a, &b);
        // Across many epochs the schedule must change: n! orderings make
        // 8 consecutive identical epochs vanishingly unlikely unless the
        // epoch key derivation is broken.
        let repeats = (1..=8u64)
            .filter(|d| {
                EpochOrder::shuffled(n, seed, epoch.wrapping_add(*d))
                    .eq(a.iter().copied())
            })
            .count();
        prop_assert!(repeats < 8, "epoch key ignored: 8 epochs, one order");
    }
}

#[test]
fn loader_conserves_images_across_epochs_and_seeds() {
    use pcr::loader::{populate_store, DecodeMode, LoaderConfig, PcrLoader};
    use pcr::storage::{DeviceProfile, ObjectStore};
    let ds = pcr::datasets::SyntheticDataset::generate(
        &pcr::datasets::DatasetSpec::celebahq_smile_like(pcr::datasets::Scale::Tiny),
    );
    let (pcr_ds, _) = pcr::datasets::to_pcr_dataset(&ds, 5);
    let store = ObjectStore::new(DeviceProfile::ram());
    populate_store(&store, &pcr_ds);
    for seed in 0..4u64 {
        for epoch in 0..3u64 {
            let cfg = LoaderConfig {
                threads: 3,
                scan_group: 5,
                shuffle: true,
                seed,
                decode: DecodeMode::Skip,
                ..LoaderConfig::default()
            };
            let r = PcrLoader::new(&store, &pcr_ds.db, cfg).run_epoch(epoch, 0.0);
            assert_eq!(r.images, ds.train.len());
            let mut records: Vec<usize> = r.records.iter().map(|x| x.record).collect();
            records.sort_unstable();
            let expected: Vec<usize> = (0..pcr_ds.num_records()).collect();
            assert_eq!(records, expected, "each record exactly once");
        }
    }
}
