//! Integration coverage for the wall-clock parallel read path: worker-count
//! invariance of the delivered data, agreement with the virtual-time
//! loader's byte accounting, and a property test that prefix truncation at
//! every scan-group boundary still decodes through the scratch-reuse path.

use pcr::core::{MetaDb, PcrRecord, PcrRecordBuilder, RecordScratch, SampleMeta};
use pcr::jpeg::ImageBuf;
use pcr::loader::{
    populate_store, DecodeMode, IoModel, LoaderConfig, ParallelConfig, ParallelLoader, PcrLoader,
};
use pcr::storage::{DeviceProfile, ObjectStore};
use proptest::prelude::*;
use std::sync::Arc;

fn pattern_image(seed: u32, w: u32, h: u32) -> ImageBuf {
    let mut data = Vec::with_capacity((w * h * 3) as usize);
    for y in 0..h {
        for x in 0..w {
            let v = ((x * 7 + y * 5 + seed * 13) % 256) as u8;
            data.push(v);
            data.push(v.wrapping_add(60));
            data.push(255 - v);
        }
    }
    ImageBuf::from_raw(w, h, 3, data).unwrap()
}

fn dermatology_fixture() -> (Arc<ObjectStore>, Arc<MetaDb>) {
    let ds = pcr::datasets::SyntheticDataset::generate(
        &pcr::datasets::DatasetSpec::ham10000_like(pcr::datasets::Scale::Tiny),
    );
    let (pcr_ds, _) = pcr::datasets::to_pcr_dataset(&ds, 4);
    let store = Arc::new(ObjectStore::new(DeviceProfile::ram()));
    populate_store(&store, &pcr_ds);
    (store, Arc::new(pcr_ds.db.clone()))
}

/// Fixed seed, 2 vs 8 workers: the *delivered multiset* of labels must be
/// identical — worker count may reorder delivery but never duplicate or
/// drop a sample.
#[test]
fn two_and_eight_workers_deliver_identical_label_multisets() {
    let (store, db) = dermatology_fixture();
    let labels_with = |workers: usize| -> Vec<u32> {
        let cfg = ParallelConfig {
            loader: LoaderConfig {
                threads: workers,
                seed: 1234,
                decode: DecodeMode::Real,
                ..LoaderConfig::at_group(2)
            },
            batch_size: 7,
            ..ParallelConfig::default()
        };
        let loader = ParallelLoader::new(Arc::clone(&store), Arc::clone(&db), cfg);
        let stream = loader.spawn_epoch(5);
        let mut labels: Vec<u32> = Vec::new();
        for b in stream.batches.iter() {
            assert_eq!(b.images.len(), b.labels.len());
            labels.extend(b.labels);
        }
        stream.join();
        labels.sort_unstable();
        labels
    };
    let two = labels_with(2);
    let eight = labels_with(8);
    assert_eq!(two.len(), db.num_images());
    assert_eq!(two, eight);

    // And both match the dataset's own label multiset.
    let mut expected: Vec<u32> = db.records.iter().flat_map(|r| r.labels.clone()).collect();
    expected.sort_unstable();
    assert_eq!(two, expected);
}

/// The wall-clock and virtual-time loaders share LoaderConfig and must
/// agree on what an epoch *reads* (bytes, images) even though one measures
/// and the other models.
#[test]
fn wall_clock_and_virtual_time_loaders_agree_on_traffic() {
    let (store, db) = dermatology_fixture();
    for group in [1usize, 5, 10] {
        let loader_cfg = LoaderConfig { decode: DecodeMode::Skip, ..LoaderConfig::at_group(group) };
        let modeled = PcrLoader::new(&store, &db, loader_cfg.clone()).run_epoch(0, 0.0);
        let wall = ParallelLoader::new(
            Arc::clone(&store),
            Arc::clone(&db),
            ParallelConfig { loader: loader_cfg, ..ParallelConfig::default() },
        )
        .run_epoch(0);
        assert_eq!(wall.images, modeled.images, "group {group}");
        assert_eq!(wall.bytes, modeled.bytes, "group {group}");
    }
}

/// Emulated-latency mode must not change what is delivered, only when.
#[test]
fn emulated_latency_delivers_same_data() {
    let (store, db) = dermatology_fixture();
    let run = |io: IoModel| {
        let cfg = ParallelConfig { io, ..ParallelConfig::real(3, 1) };
        ParallelLoader::new(Arc::clone(&store), Arc::clone(&db), cfg).run_epoch(2)
    };
    let instant = run(IoModel::Instant);
    let emulated = run(IoModel::EmulatedLatency);
    assert_eq!(instant.images, emulated.images);
    assert_eq!(instant.bytes, emulated.bytes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Truncating a record at *every* scan-group boundary must leave a
    /// parseable prefix whose images all decode at that group — the
    /// invariant the parallel workers rely on when a partial read lands
    /// exactly on a boundary. Exercises the scratch-reuse decode path.
    #[test]
    fn truncation_at_every_group_boundary_decodes(
        n_images in 1usize..4,
        quality in 70u8..95,
        wh in (16u32..48, 16u32..48),
    ) {
        let (w, h) = wh;
        let mut builder = PcrRecordBuilder::with_default_groups();
        for i in 0..n_images {
            builder
                .add_image(
                    SampleMeta { label: i as u32, id: format!("p{i}") },
                    &pattern_image(i as u32 + 1, w, h),
                    quality,
                )
                .unwrap();
        }
        let bytes = builder.build().unwrap();
        let full = PcrRecord::parse(&bytes).unwrap();
        let mut scratch = RecordScratch::new();
        for g in 1..=full.num_groups() {
            let prefix = &bytes[..full.offset_for_group(g)];
            let view = PcrRecord::parse(prefix).unwrap();
            prop_assert_eq!(view.available_groups(), g);
            for i in 0..view.num_images() {
                let img = view.decode_image_with(i, g, &mut scratch).unwrap();
                prop_assert_eq!(img.width(), w);
                prop_assert_eq!(img.height(), h);
            }
        }
    }
}
