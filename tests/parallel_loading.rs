//! Integration coverage for the wall-clock parallel read path: worker-count
//! invariance of the delivered data, agreement with the virtual-time
//! loader's byte accounting, visibility of wall-clock traffic in the
//! store's cache/device statistics (the clocked unified read path), epoch
//! invariance under fidelity-controller decisions, and a property test
//! that prefix truncation at every scan-group boundary still decodes
//! through the scratch-reuse path.

use pcr::core::{MetaDb, PcrRecord, PcrRecordBuilder, RecordScratch, SampleMeta};
use pcr::jpeg::ImageBuf;
use pcr::loader::{
    populate_store, DecodeMode, IoModel, LoaderConfig, ParallelConfig, ParallelLoader, PcrLoader,
    ReadPlanner,
};
use pcr::storage::{DeviceProfile, ObjectStore};
use proptest::prelude::*;
use std::sync::Arc;
use std::sync::OnceLock;

fn pattern_image(seed: u32, w: u32, h: u32) -> ImageBuf {
    let mut data = Vec::with_capacity((w * h * 3) as usize);
    for y in 0..h {
        for x in 0..w {
            let v = ((x * 7 + y * 5 + seed * 13) % 256) as u8;
            data.push(v);
            data.push(v.wrapping_add(60));
            data.push(255 - v);
        }
    }
    ImageBuf::from_raw(w, h, 3, data).unwrap()
}

fn dermatology_fixture() -> (Arc<ObjectStore>, Arc<MetaDb>) {
    let ds = pcr::datasets::SyntheticDataset::generate(
        &pcr::datasets::DatasetSpec::ham10000_like(pcr::datasets::Scale::Tiny),
    );
    let (pcr_ds, _) = pcr::datasets::to_pcr_dataset(&ds, 4);
    let store = Arc::new(ObjectStore::new(DeviceProfile::ram()));
    populate_store(&store, &pcr_ds);
    (store, Arc::new(pcr_ds.db.clone()))
}

/// Fixed seed, 2 vs 8 workers: the *delivered multiset* of labels must be
/// identical — worker count may reorder delivery but never duplicate or
/// drop a sample.
#[test]
fn two_and_eight_workers_deliver_identical_label_multisets() {
    let (store, db) = dermatology_fixture();
    let labels_with = |workers: usize| -> Vec<u32> {
        let cfg = ParallelConfig {
            loader: LoaderConfig {
                threads: workers,
                seed: 1234,
                decode: DecodeMode::Real,
                ..LoaderConfig::at_group(2)
            },
            batch_size: 7,
            ..ParallelConfig::default()
        };
        let loader = ParallelLoader::new(Arc::clone(&store), Arc::clone(&db), cfg);
        let stream = loader.spawn_epoch(5);
        let mut labels: Vec<u32> = Vec::new();
        for b in stream.batches.iter() {
            assert_eq!(b.images.len(), b.labels.len());
            labels.extend(b.labels);
        }
        stream.join();
        labels.sort_unstable();
        labels
    };
    let two = labels_with(2);
    let eight = labels_with(8);
    assert_eq!(two.len(), db.num_images());
    assert_eq!(two, eight);

    // And both match the dataset's own label multiset.
    let mut expected: Vec<u32> = db.records.iter().flat_map(|r| r.labels.clone()).collect();
    expected.sort_unstable();
    assert_eq!(two, expected);
}

/// The wall-clock and virtual-time loaders share LoaderConfig and must
/// agree on what an epoch *reads* (bytes, images) even though one measures
/// and the other models.
#[test]
fn wall_clock_and_virtual_time_loaders_agree_on_traffic() {
    let (store, db) = dermatology_fixture();
    for group in [1usize, 5, 10] {
        let loader_cfg = LoaderConfig { decode: DecodeMode::Skip, ..LoaderConfig::at_group(group) };
        let modeled = PcrLoader::new(&store, &db, loader_cfg.clone()).run_epoch(0, 0.0);
        let wall = ParallelLoader::new(
            Arc::clone(&store),
            Arc::clone(&db),
            ParallelConfig { loader: loader_cfg, ..ParallelConfig::default() },
        )
        .run_epoch(0);
        assert_eq!(wall.images, modeled.images, "group {group}");
        assert_eq!(wall.bytes, modeled.bytes, "group {group}");
    }
}

/// Emulated-latency mode must not change what is delivered, only when.
#[test]
fn emulated_latency_delivers_same_data() {
    let (store, db) = dermatology_fixture();
    let run = |io: IoModel| {
        let cfg = ParallelConfig { io, ..ParallelConfig::real(3, 1) };
        ParallelLoader::new(Arc::clone(&store), Arc::clone(&db), cfg).run_epoch(2)
    };
    let instant = run(IoModel::Instant);
    let emulated = run(IoModel::EmulatedLatency);
    assert_eq!(instant.images, emulated.images);
    assert_eq!(instant.bytes, emulated.bytes);
}

/// Regression (ISSUE 3): wall-clock reads used to bypass the store's page
/// cache and device statistics entirely (the since-removed `read_bytes`
/// side door). Through the unified
/// clocked read path, parallel-loader traffic must show up in both
/// `cache_hit_rate()` and `device_stats()`.
#[test]
fn parallel_loader_traffic_is_visible_to_cache_and_device_stats() {
    let ds = pcr::datasets::SyntheticDataset::generate(
        &pcr::datasets::DatasetSpec::ham10000_like(pcr::datasets::Scale::Tiny),
    );
    let (pcr_ds, _) = pcr::datasets::to_pcr_dataset(&ds, 4);
    let store = Arc::new(ObjectStore::with_cache(DeviceProfile::ram(), 512 << 20));
    populate_store(&store, &pcr_ds);
    let db = Arc::new(pcr_ds.db.clone());

    let cfg = ParallelConfig {
        loader: LoaderConfig { threads: 3, decode: DecodeMode::Skip, ..LoaderConfig::at_group(4) },
        ..ParallelConfig::default()
    };
    let loader = ParallelLoader::new(Arc::clone(&store), Arc::clone(&db), cfg);

    // Cold epoch: every record's prefix must be read from the device.
    let cold = loader.run_epoch(0);
    let after_cold = store.device_stats();
    assert!(after_cold.reads >= db.records.len() as u64, "every record hit the device");
    assert!(after_cold.bytes > 0, "device saw the wall-clock traffic");
    // Cache misses are page-granular, so the device transfers the
    // delivered bytes rounded up by at most one page per read.
    assert!(after_cold.bytes >= cold.bytes, "device transferred at least the delivered bytes");
    let page = pcr::storage::PAGE_SIZE;
    assert!(
        after_cold.bytes <= cold.bytes + after_cold.reads * page,
        "device bytes {} vs delivered {} + page slack",
        after_cold.bytes,
        cold.bytes
    );

    // Warm epoch: the same prefixes are resident, so the cache absorbs
    // them — the hit rate moves and the device transfers nothing new.
    let warm = loader.run_epoch(1);
    assert_eq!(warm.bytes, cold.bytes, "delivered bytes are unchanged");
    let after_warm = store.device_stats();
    assert_eq!(after_warm.bytes, after_cold.bytes, "warm epoch fully served from cache");
    assert!(
        store.cache_hit_rate() > 0.4,
        "cache hit rate {} must reflect wall-clock reads",
        store.cache_hit_rate()
    );
}

fn proptest_fixture() -> &'static (Arc<ObjectStore>, Arc<MetaDb>, Vec<u32>) {
    static FIXTURE: OnceLock<(Arc<ObjectStore>, Arc<MetaDb>, Vec<u32>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let (store, db) = dermatology_fixture();
        let mut expected: Vec<u32> = db.records.iter().flat_map(|r| r.labels.clone()).collect();
        expected.sort_unstable();
        (store, db, expected)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For a fixed seed, the epoch record order and the delivered label
    /// multiset are invariant across worker counts *and* across
    /// fidelity-controller decisions: a controller that changes the scan
    /// group between (or during a sequence of) epochs changes how many
    /// bytes are read, never which records are visited, in what order,
    /// or what labels come out.
    #[test]
    fn epoch_order_and_multiset_invariant_across_workers_and_fidelity(
        workers in 1usize..5,
        seed in 0u64..1_000,
        groups in prop::collection::vec(1usize..=10, 1..4),
    ) {
        let (store, db, expected) = proptest_fixture();
        let n = db.records.len();
        let base = LoaderConfig {
            threads: workers,
            seed,
            decode: DecodeMode::Skip,
            ..LoaderConfig::at_group(10)
        };
        let reference_order = ReadPlanner::from_config(&base).epoch_order(n, 0);
        for (epoch, &g) in groups.iter().enumerate() {
            // The schedule is a function of (seed, epoch) only — the
            // fidelity decision `g` and the worker count never touch it.
            let planner = ReadPlanner::from_config(&base).at_group(g);
            let order = planner.epoch_order(n, 0);
            prop_assert_eq!(&order, &reference_order);

            // And the delivered label multiset matches the dataset.
            let cfg = ParallelConfig { loader: base.clone(), batch_size: 5, ..ParallelConfig::default() };
            let loader = ParallelLoader::new(Arc::clone(store), Arc::clone(db), cfg);
            let stream = loader.spawn_epoch_at(epoch as u64, g);
            let mut labels: Vec<u32> = stream.batches.iter().flat_map(|b| b.labels).collect();
            stream.join();
            labels.sort_unstable();
            prop_assert_eq!(&labels, expected);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Truncating a record at *every* scan-group boundary must leave a
    /// parseable prefix whose images all decode at that group — the
    /// invariant the parallel workers rely on when a partial read lands
    /// exactly on a boundary. Exercises the scratch-reuse decode path.
    #[test]
    fn truncation_at_every_group_boundary_decodes(
        n_images in 1usize..4,
        quality in 70u8..95,
        wh in (16u32..48, 16u32..48),
    ) {
        let (w, h) = wh;
        let mut builder = PcrRecordBuilder::with_default_groups();
        for i in 0..n_images {
            builder
                .add_image(
                    SampleMeta { label: i as u32, id: format!("p{i}") },
                    &pattern_image(i as u32 + 1, w, h),
                    quality,
                )
                .unwrap();
        }
        let bytes = builder.build().unwrap();
        let full = PcrRecord::parse(&bytes).unwrap();
        let mut scratch = RecordScratch::new();
        for g in 1..=full.num_groups() {
            let prefix = &bytes[..full.offset_for_group(g)];
            let view = PcrRecord::parse(prefix).unwrap();
            prop_assert_eq!(view.available_groups(), g);
            for i in 0..view.num_images() {
                let img = view.decode_image_with(i, g, &mut scratch).unwrap();
                prop_assert_eq!(img.width(), w);
                prop_assert_eq!(img.height(), h);
            }
        }
    }
}
