//! Cross-layer consistency: the byte counts and throughput figures
//! reported by the metadata DB, the loader, the pipeline simulation, and
//! the analytical queueing model must all agree with each other.

use pcr::datasets::{DatasetSpec, Scale, SyntheticDataset};
use pcr::loader::{populate_store, DecodeMode, LoaderConfig, PcrLoader};
use pcr::sim::{loader_throughput, run_pipeline, ComputeUnit};
use pcr::storage::{DeviceProfile, ObjectStore};

fn setup() -> (pcr::core::PcrDataset, SyntheticDataset) {
    let ds = SyntheticDataset::generate(&DatasetSpec::imagenet_like(Scale::Tiny));
    let (pcr_ds, _) = pcr::datasets::to_pcr_dataset(&ds, 8);
    (pcr_ds, ds)
}

#[test]
fn db_byte_plan_matches_loader_reads_exactly() {
    let (pcr_ds, _) = setup();
    let store = ObjectStore::new(DeviceProfile::ssd_sata());
    populate_store(&store, &pcr_ds);
    for g in [1usize, 2, 5, 10] {
        store.device().reset();
        let cfg = LoaderConfig {
            threads: 4,
            scan_group: g,
            shuffle: true,
            seed: 11,
            decode: DecodeMode::Skip,
            ..LoaderConfig::default()
        };
        let epoch = PcrLoader::new(&store, &pcr_ds.db, cfg).run_epoch(0, 0.0);
        // The DB's plan and the loader's accounting and the device's
        // transfer counters must be identical.
        assert_eq!(epoch.bytes, pcr_ds.db.bytes_at_group(g), "group {g} loader vs db");
        assert_eq!(
            store.device_stats().bytes,
            pcr_ds.db.bytes_at_group(g),
            "group {g} device vs db"
        );
    }
}

#[test]
fn record_files_on_store_match_db_lengths() {
    let (pcr_ds, _) = setup();
    let store = ObjectStore::new(DeviceProfile::ram());
    populate_store(&store, &pcr_ds);
    for meta in &pcr_ds.db.records {
        assert_eq!(store.len_of(&meta.name), Some(meta.total_len()));
    }
    assert_eq!(store.total_bytes(), pcr_ds.db.total_bytes());
}

#[test]
fn storage_bound_pipeline_tracks_lemma_a2() {
    // With a very fast compute unit and one loader thread, achieved
    // images/sec must track W / E[bytes per image] (Lemma A.2) within the
    // tolerance left by per-request overheads.
    let (pcr_ds, _) = setup();
    let profile = DeviceProfile::ssd_sata();
    let store = ObjectStore::new(profile.clone());
    populate_store(&store, &pcr_ds);
    for g in [2usize, 10] {
        store.device().reset();
        let cfg = LoaderConfig {
            threads: 1,
            scan_group: g,
            shuffle: false,
            seed: 0,
            decode: DecodeMode::Skip,
            ..LoaderConfig::default()
        };
        let epoch = PcrLoader::new(&store, &pcr_ds.db, cfg).run_epoch(0, 0.0);
        let pipe = run_pipeline(&epoch, &ComputeUnit { images_per_sec: 1e12, batch_size: 8 }, 0.0);
        let lemma = loader_throughput(&profile, pcr_ds.db.mean_image_bytes_at_group(g), 8);
        let rel = (pipe.images_per_sec() - lemma).abs() / lemma;
        assert!(rel < 0.4, "group {g}: sim {:.0} vs lemma {lemma:.0}", pipe.images_per_sec());
    }
}

#[test]
fn threaded_pipeline_agrees_with_virtual_loader_bytes() {
    use std::sync::Arc;
    let (pcr_ds, _) = setup();
    let store = Arc::new(ObjectStore::new(DeviceProfile::ram()));
    populate_store(&store, &pcr_ds);
    let db = Arc::new(pcr_ds.db.clone());
    let cfg = pcr::loader::PipelineConfig {
        threads: 2,
        scan_group: 2,
        batch_size: 16,
        prefetch: 4,
        shuffle_seed: Some(1),
    };
    let pipe = pcr::loader::spawn_epoch(Arc::clone(&store), db, cfg, 0);
    let stats = Arc::clone(&pipe.stats);
    let mut labels = 0usize;
    for b in pipe.batches.iter() {
        labels += b.labels.len();
    }
    pipe.join();
    assert_eq!(labels, pcr_ds.db.num_images());
    assert_eq!(
        stats.bytes_read.load(std::sync::atomic::Ordering::Relaxed),
        pcr_ds.db.bytes_at_group(2)
    );
}

#[test]
fn featurized_mean_bytes_track_db_plan() {
    // `featurize` measures per-image prefix sizes from standalone
    // progressive files; the PCR dataset adds per-record index/header
    // overhead. The two views must agree on ordering and rough magnitude.
    let (pcr_ds, ds) = setup();
    let feats =
        pcr::sim::featurize(&ds, &pcr::nn::ModelSpec::resnet_like(), &[1, 5, 10]);
    for g in [1usize, 5, 10] {
        let standalone = feats.mean_bytes[&g];
        let from_db = pcr_ds.db.mean_image_bytes_at_group(g);
        let ratio = from_db / standalone;
        assert!(
            (0.5..2.0).contains(&ratio),
            "group {g}: db {from_db:.0} vs standalone {standalone:.0}"
        );
    }
    assert!(feats.mean_bytes[&1] < feats.mean_bytes[&5]);
    assert!(pcr_ds.db.mean_image_bytes_at_group(1) < pcr_ds.db.mean_image_bytes_at_group(5));
}
