//! The no-panic contract of every untrusted-bytes parser, checked the
//! direct way: feed arbitrary, truncated, and bit-flipped bytes into
//! `PcrRecord::parse`, `ShardIndex::parse`, `ContainerManifest::from_bytes`,
//! and `PcrContainer::open` and require a `Result` back — never a panic.
//! This is the runtime twin of the `no-panic-in-hot-path` /
//! `bounded-alloc` lint rules `pcr-analyze` enforces statically over the
//! same modules.

use pcr::core::container::{ContainerManifest, ShardIndex};
use pcr::core::{write_container, PcrContainer, PcrRecord};
use pcr::datasets::{to_pcr_dataset, DatasetSpec, Scale, SyntheticDataset};
use proptest::{prop, proptest, ProptestConfig};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pcr-noparse-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A tiny but real container on disk: valid manifest, valid shards.
fn packed(tag: &str) -> PathBuf {
    let ds = SyntheticDataset::generate(&DatasetSpec::ham10000_like(Scale::Tiny));
    let (pcr, _) = to_pcr_dataset(&ds, 4);
    let dir = tmpdir(tag);
    write_container(&pcr, &dir, 4).expect("pack");
    dir
}

/// One valid serialized manifest and one valid shard file's bytes,
/// packed once and cached (each proptest case mutates its own copy).
fn valid_bytes(tag: &str) -> (Vec<u8>, Vec<u8>) {
    static CACHE: std::sync::OnceLock<(Vec<u8>, Vec<u8>)> = std::sync::OnceLock::new();
    CACHE
        .get_or_init(|| {
            let dir = packed(tag);
            let manifest_bytes =
                std::fs::read(dir.join("manifest.pcrm")).expect("manifest written");
            let container = PcrContainer::open(&dir).expect("container reopens");
            let shard_bytes = container.read_shard(0).expect("shard readable");
            let _ = std::fs::remove_dir_all(&dir);
            (manifest_bytes, shard_bytes)
        })
        .clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn record_parse_survives_arbitrary_bytes(
        bytes in prop::collection::vec(proptest::any::<u8>(), 0..512)
    ) {
        let _ = PcrRecord::parse(&bytes);
    }

    #[test]
    fn shard_index_parse_survives_arbitrary_bytes(
        bytes in prop::collection::vec(proptest::any::<u8>(), 0..512)
    ) {
        let _ = ShardIndex::parse("fuzz.pcrs", &bytes);
    }

    #[test]
    fn manifest_parse_survives_arbitrary_bytes(
        bytes in prop::collection::vec(proptest::any::<u8>(), 0..512)
    ) {
        let _ = ContainerManifest::from_bytes(&bytes);
    }
}

proptest! {
    // Truncation/bit-flip cases re-read real serialized bytes, so fewer,
    // heavier cases.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn truncated_real_bytes_error_instead_of_panicking(cut_permille in 0u64..1000) {
        let (manifest, shard) = valid_bytes("trunc");
        let cut = |b: &[u8]| b.len() * usize::try_from(cut_permille).unwrap() / 1000;
        let m = &manifest[..cut(&manifest)];
        let s = &shard[..cut(&shard)];
        assert!(ContainerManifest::from_bytes(m).is_err());
        // A truncated shard must never index back into the full file.
        let _ = ShardIndex::parse("trunc.pcrs", s);
    }

    #[test]
    fn bit_flipped_real_bytes_never_panic(seed in proptest::any::<u64>()) {
        let (mut manifest, mut shard) = valid_bytes("flip");
        let flip = |b: &mut [u8], s: u64| {
            if !b.is_empty() {
                let pos = (s as usize) % b.len();
                b[pos] ^= 1 << (s % 8);
            }
        };
        flip(&mut manifest, seed);
        flip(&mut shard, seed.rotate_left(17));
        // Either outcome is fine (the checksum usually catches it); the
        // contract is only that corruption cannot panic the parser.
        let _ = ContainerManifest::from_bytes(&manifest);
        let _ = ShardIndex::parse("flip.pcrs", &shard);
    }
}

#[test]
fn container_open_survives_a_corrupted_manifest_on_disk() {
    let dir = packed("open-corrupt");
    let path = dir.join("manifest.pcrm");
    let mut bytes = std::fs::read(&path).unwrap();
    // Flip one bit in every byte position stride to probe headers, body,
    // and the trailing checksum alike.
    for stride in [1usize, 7, 13] {
        let mut mutated = bytes.clone();
        let mut i = 0;
        while i < mutated.len() {
            mutated[i] ^= 0x20;
            i += stride.max(mutated.len() / 16).max(1);
        }
        std::fs::write(&path, &mutated).unwrap();
        let _ = PcrContainer::open(&dir); // must not panic
    }
    // Truncated on-disk manifest.
    bytes.truncate(bytes.len() / 2);
    std::fs::write(&path, &bytes).unwrap();
    assert!(PcrContainer::open(&dir).is_err());
    // Empty and missing manifest.
    std::fs::write(&path, b"").unwrap();
    assert!(PcrContainer::open(&dir).is_err());
    std::fs::remove_file(&path).unwrap();
    assert!(PcrContainer::open(&dir).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn record_parse_survives_truncations_of_a_real_record() {
    let ds = SyntheticDataset::generate(&DatasetSpec::ham10000_like(Scale::Tiny));
    let (pcr, _) = to_pcr_dataset(&ds, 4);
    let bytes = pcr.records.first().expect("non-empty dataset").clone();
    assert!(PcrRecord::parse(&bytes).is_ok());
    for len in 0..bytes.len().min(256) {
        let _ = PcrRecord::parse(&bytes[..len]);
    }
    // And coarse truncations across the whole record.
    for permille in (0..1000).step_by(31) {
        let _ = PcrRecord::parse(&bytes[..bytes.len() * permille / 1000]);
    }
}
