//! The no-panic contract of every untrusted-bytes parser, checked the
//! direct way: feed arbitrary, truncated, and bit-flipped bytes into
//! `PcrRecord::parse`, `ShardIndex::parse`, `ContainerManifest::from_bytes`,
//! `PcrContainer::open`, `DecisionLog::parse`, and the restart-marker
//! entropy paths (`split_restart_segments`, segment-parallel decode,
//! per-group `segment_count`) and require a `Result` back — never a
//! panic. This is the runtime twin of the `no-panic-in-hot-path` /
//! `bounded-alloc` lint rules `pcr-analyze` enforces statically over the
//! same modules.

use pcr::core::container::{ContainerManifest, ShardIndex};
use pcr::core::declog::{DecisionLog, DecisionRecord};
use pcr::core::{write_container, PcrContainer, PcrRecord};
use pcr::metrics::TriggerKind;
use pcr::datasets::{to_pcr_dataset, DatasetSpec, Scale, SyntheticDataset};
use proptest::{prop, proptest, ProptestConfig};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pcr-noparse-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A tiny but real container on disk: valid manifest, valid shards.
fn packed(tag: &str) -> PathBuf {
    let ds = SyntheticDataset::generate(&DatasetSpec::ham10000_like(Scale::Tiny));
    let (pcr, _) = to_pcr_dataset(&ds, 4);
    let dir = tmpdir(tag);
    write_container(&pcr, &dir, 4).expect("pack");
    dir
}

/// One valid serialized manifest and one valid shard file's bytes in the
/// default (columnar, v3) format, packed once and cached (each proptest
/// case mutates its own copy).
fn valid_bytes(tag: &str) -> (Vec<u8>, Vec<u8>) {
    static CACHE: std::sync::OnceLock<(Vec<u8>, Vec<u8>)> = std::sync::OnceLock::new();
    CACHE
        .get_or_init(|| {
            let dir = packed(tag);
            let manifest_bytes =
                std::fs::read(dir.join("manifest.pcrm")).expect("manifest written");
            let container = PcrContainer::open(&dir).expect("container reopens");
            let shard_bytes = container.read_shard(0).expect("shard readable");
            let _ = std::fs::remove_dir_all(&dir);
            (manifest_bytes, shard_bytes)
        })
        .clone()
}

/// Same as [`valid_bytes`], but packed in the legacy row-footer (v1)
/// format, so both footer parse paths stay under fuzz.
fn valid_bytes_v1(tag: &str) -> (Vec<u8>, Vec<u8>) {
    static CACHE: std::sync::OnceLock<(Vec<u8>, Vec<u8>)> = std::sync::OnceLock::new();
    CACHE
        .get_or_init(|| {
            let ds = SyntheticDataset::generate(&DatasetSpec::ham10000_like(Scale::Tiny));
            let (pcr, _) = to_pcr_dataset(&ds, 4);
            let dir = tmpdir(tag);
            pcr::core::write_container_versioned(&pcr, &dir, 4, pcr::core::CONTAINER_VERSION_ROWS)
                .expect("pack v1");
            let manifest_bytes =
                std::fs::read(dir.join("manifest.pcrm")).expect("manifest written");
            let container = PcrContainer::open(&dir).expect("container reopens");
            let shard_bytes = container.read_shard(0).expect("shard readable");
            let _ = std::fs::remove_dir_all(&dir);
            (manifest_bytes, shard_bytes)
        })
        .clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn record_parse_survives_arbitrary_bytes(
        bytes in prop::collection::vec(proptest::any::<u8>(), 0..512)
    ) {
        let _ = PcrRecord::parse(&bytes);
    }

    #[test]
    fn shard_index_parse_survives_arbitrary_bytes(
        bytes in prop::collection::vec(proptest::any::<u8>(), 0..512)
    ) {
        let _ = ShardIndex::parse("fuzz.pcrs", &bytes);
    }

    #[test]
    fn manifest_parse_survives_arbitrary_bytes(
        bytes in prop::collection::vec(proptest::any::<u8>(), 0..512)
    ) {
        let _ = ContainerManifest::from_bytes(&bytes);
    }
}

proptest! {
    // Truncation/bit-flip cases re-read real serialized bytes, so fewer,
    // heavier cases.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn truncated_real_bytes_error_instead_of_panicking(cut_permille in 0u64..1000) {
        for (manifest, shard) in [valid_bytes("trunc"), valid_bytes_v1("trunc-v1")] {
            let cut = |b: &[u8]| b.len() * usize::try_from(cut_permille).unwrap() / 1000;
            let m = &manifest[..cut(&manifest)];
            let s = &shard[..cut(&shard)];
            assert!(ContainerManifest::from_bytes(m).is_err());
            // A truncated shard must never index back into the full file.
            let _ = ShardIndex::parse("trunc.pcrs", s);
        }
    }

    #[test]
    fn bit_flipped_real_bytes_never_panic(seed in proptest::any::<u64>()) {
        for (mut manifest, mut shard) in [valid_bytes("flip"), valid_bytes_v1("flip-v1")] {
            let flip = |b: &mut [u8], s: u64| {
                if !b.is_empty() {
                    let pos = (s as usize) % b.len();
                    b[pos] ^= 1 << (s % 8);
                }
            };
            flip(&mut manifest, seed);
            flip(&mut shard, seed.rotate_left(17));
            // Either outcome is fine (the checksum usually catches it); the
            // contract is only that corruption cannot panic the parser.
            let _ = ContainerManifest::from_bytes(&manifest);
            let _ = ShardIndex::parse("flip.pcrs", &shard);
        }
    }

    #[test]
    fn corrupted_columnar_footers_never_panic_lazy_entry(seed in proptest::any::<u64>()) {
        // The v3 lazy path reads footer columns *on demand*, after the
        // geometry-only open checks — so corruption that slips past open
        // must surface as an `Err` from `entry`/`read_record`, never as
        // a panic or out-of-bounds read. Flip one byte anywhere in the
        // first shard file and walk every entry.
        let dir = packed(&format!("lazy-flip-{seed}"));
        let container = PcrContainer::open(&dir).expect("open clean");
        let path = container.shard_path(0);
        let mut bytes = std::fs::read(&path).expect("shard bytes");
        let pos = (seed as usize) % bytes.len();
        bytes[pos] ^= 1 << (seed % 8);
        std::fs::write(&path, &bytes).expect("write corrupted shard");
        if let Ok(reopened) = PcrContainer::open(&dir) {
            for k in 0..reopened.num_records() {
                if let Ok((shard, rec)) = reopened.entry(k) {
                    let _ = reopened.read_record(shard, &rec);
                }
            }
            let _ = reopened.verify();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn container_open_survives_a_corrupted_manifest_on_disk() {
    let dir = packed("open-corrupt");
    let path = dir.join("manifest.pcrm");
    let mut bytes = std::fs::read(&path).unwrap();
    // Flip one bit in every byte position stride to probe headers, body,
    // and the trailing checksum alike.
    for stride in [1usize, 7, 13] {
        let mut mutated = bytes.clone();
        let mut i = 0;
        while i < mutated.len() {
            mutated[i] ^= 0x20;
            i += stride.max(mutated.len() / 16).max(1);
        }
        std::fs::write(&path, &mutated).unwrap();
        let _ = PcrContainer::open(&dir); // must not panic
    }
    // Truncated on-disk manifest.
    bytes.truncate(bytes.len() / 2);
    std::fs::write(&path, &bytes).unwrap();
    assert!(PcrContainer::open(&dir).is_err());
    // Empty and missing manifest.
    std::fs::write(&path, b"").unwrap();
    assert!(PcrContainer::open(&dir).is_err());
    std::fs::remove_file(&path).unwrap();
    assert!(PcrContainer::open(&dir).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

/// One real restart-marker progressive JPEG, encoded once and cached
/// (each case mutates its own copy).
fn restart_jpeg() -> Vec<u8> {
    static CACHE: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    CACHE
        .get_or_init(|| {
            let mut data = Vec::new();
            for y in 0..40u32 {
                for x in 0..48u32 {
                    data.push(((x * 5 + y * 11) % 256) as u8);
                    data.push(((x + y * 3) % 256) as u8);
                    data.push(((x * y) % 256) as u8);
                }
            }
            let img = pcr::jpeg::ImageBuf::from_raw(48, 40, 3, data).unwrap();
            let cfg = pcr::jpeg::EncodeConfig::progressive(85).with_restart_interval(2);
            pcr::jpeg::encode(&img, &cfg).expect("encode")
        })
        .clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn restart_splitter_survives_arbitrary_bytes(
        bytes in prop::collection::vec(proptest::any::<u8>(), 0..512)
    ) {
        // The restart-segment splitter is the first thing untrusted
        // entropy bytes hit on the parallel path: any input must yield
        // in-bounds, non-overlapping, ordered segments — never a panic.
        let segs = pcr::jpeg::bitio::split_restart_segments(&bytes);
        let mut prev_end = 0usize;
        for &(start, end) in &segs {
            assert!(start >= prev_end, "segments ordered and disjoint");
            assert!(start <= end, "non-negative length");
            assert!(end <= bytes.len(), "in bounds");
            prev_end = end;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn corrupted_restart_streams_never_panic(seed in proptest::any::<u64>()) {
        // Bit-flip anywhere in a real restart-marker stream — including
        // inside DRI payloads and RSTn markers — then decode both
        // sequentially and with segment workers. Errors are fine;
        // panics are not.
        let mut jpeg = restart_jpeg();
        let pos = (seed as usize) % jpeg.len();
        jpeg[pos] ^= 1 << (seed % 8);
        let _ = pcr::jpeg::decode(&jpeg);
        let _ = pcr::jpeg::decode_coeffs_workers(&jpeg, &mut Vec::new(), 4);
    }

    #[test]
    fn truncated_restart_streams_never_panic(cut_permille in 0u64..1000) {
        let jpeg = restart_jpeg();
        let cut = jpeg.len() * usize::try_from(cut_permille).unwrap() / 1000;
        let _ = pcr::jpeg::decode(&jpeg[..cut]);
        let _ = pcr::jpeg::decode_coeffs_workers(&jpeg[..cut], &mut Vec::new(), 4);
    }
}

#[test]
fn restart_record_truncations_never_panic() {
    // A version-2 (restart-marker) record under truncation: parse,
    // per-group segment counting, and image decode must all return
    // Results at every cut point.
    use pcr::core::{PcrRecordBuilder, SampleMeta};
    let mut data = Vec::new();
    for i in 0..(32 * 32 * 3) as u32 {
        data.push((i % 251) as u8);
    }
    let img = pcr::jpeg::ImageBuf::from_raw(32, 32, 3, data).unwrap();
    let mut b = PcrRecordBuilder::with_default_groups().with_restart_interval(1);
    b.add_image(SampleMeta { label: 0, id: "r".into() }, &img, 85).unwrap();
    let bytes = b.build().unwrap();
    assert!(PcrRecord::parse(&bytes).is_ok());
    for permille in (0..=1000).step_by(17) {
        let cut = bytes.len() * permille / 1000;
        if let Ok(rec) = PcrRecord::parse(&bytes[..cut]) {
            for g in 1..=10usize {
                let _ = rec.segment_count(0, g);
                let _ = rec.decode_image(0, g);
            }
        }
    }
}

/// One valid serialized decision log (three records, mixed triggers,
/// probe-score lists), built once and cached.
fn valid_declog_bytes() -> Vec<u8> {
    static CACHE: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    CACHE
        .get_or_init(|| {
            let rec = |epoch: u64, trigger, group: u16| DecisionRecord {
                epoch,
                trigger,
                scan_group: group,
                bytes_read: 10_000 / u64::from(group).max(1),
                bytes_full: 10_000,
                images: 32,
                cache_hit_rate: 0.5,
                loss: 1.0 / (epoch + 1) as f64,
                probe_scores: vec![(1, 0.62), (2, 0.88), (5, 0.96), (10, 1.0)],
            };
            DecisionLog::from_records(vec![
                rec(0, TriggerKind::Start, 10),
                rec(1, TriggerKind::Plateau, 5),
                rec(2, TriggerKind::Hold, 5),
            ])
            .expect("encode")
            .to_bytes()
            .expect("serialize")
        })
        .clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn declog_parse_survives_arbitrary_bytes(
        bytes in prop::collection::vec(proptest::any::<u8>(), 0..512)
    ) {
        if let Ok(log) = DecisionLog::parse(&bytes) {
            let _ = log.verify();
            let _ = log.bytes_saved();
        }
    }

    #[test]
    fn declog_parse_survives_truncation(cut_permille in 0u64..1000) {
        let bytes = valid_declog_bytes();
        let cut = bytes.len() * usize::try_from(cut_permille).unwrap() / 1000;
        if let Ok(log) = DecisionLog::parse(&bytes[..cut]) {
            // A truncated log delivers a prefix of the records; the cut
            // can never invent records or pass the strict verify unless
            // it happens to land exactly on a record boundary.
            assert!(log.len() <= 3);
            if log.undecoded_tail() > 0 {
                assert!(log.verify().is_err());
            }
        }
    }

    #[test]
    fn declog_parse_survives_bit_flips(seed in proptest::any::<u64>()) {
        let mut bytes = valid_declog_bytes();
        let pos = (seed as usize) % bytes.len();
        bytes[pos] ^= 1 << (seed % 8);
        // Either outcome is fine (header flips error, body flips are
        // caught by verify); the contract is no panic either way.
        if let Ok(log) = DecisionLog::parse(&bytes) {
            let _ = log.verify();
        }
    }
}

#[test]
fn declog_corrupted_chain_fails_verify_but_delivers_records() {
    // The satellite contract verbatim: corrupt a chain CRC byte — the
    // strict verify must fail, record delivery must not.
    let clean = valid_declog_bytes();
    let parsed_clean = DecisionLog::parse(&clean).unwrap();
    parsed_clean.verify().expect("clean log verifies");
    let n = parsed_clean.len();
    let mut corrupt = clean.clone();
    let last = corrupt.len() - 1; // final chain CRC byte
    corrupt[last] ^= 0xFF;
    let parsed = DecisionLog::parse(&corrupt).unwrap();
    assert_eq!(parsed.len(), n, "corruption must not drop records");
    assert_eq!(parsed.records(), parsed_clean.records());
    assert!(parsed.verify().is_err(), "verify must catch the broken chain");
}

#[test]
fn record_parse_survives_truncations_of_a_real_record() {
    let ds = SyntheticDataset::generate(&DatasetSpec::ham10000_like(Scale::Tiny));
    let (pcr, _) = to_pcr_dataset(&ds, 4);
    let bytes = pcr.records.first().expect("non-empty dataset").clone();
    assert!(PcrRecord::parse(&bytes).is_ok());
    for len in 0..bytes.len().min(256) {
        let _ = PcrRecord::parse(&bytes[..len]);
    }
    // And coarse truncations across the whole record.
    for permille in (0..1000).step_by(31) {
        let _ = PcrRecord::parse(&bytes[..bytes.len() * permille / 1000]);
    }
}
