//! Golden-trace regression harness for the fidelity controller.
//!
//! A committed fixture container (`tests/fixtures/golden-trace/container/`)
//! carries a committed `decisions.pcrd` produced by a fully deterministic
//! controller run: single worker thread, `DecodeMode::Skip`,
//! `IoModel::Instant`, pinned probe scores, and a scripted loss curve.
//! Replaying the same run against the committed container must reproduce
//! the decision log **byte for byte** — any drift in the controller, the
//! trigger classification, the byte accounting, or the wire encoding
//! fails the test with a per-decision diff instead of a hex blob.
//!
//! To regenerate the fixtures after an *intentional* controller or
//! format change:
//!
//! ```text
//! PCR_REGEN_GOLDEN=1 cargo test --test golden_trace
//! ```
//!
//! and commit the updated `tests/fixtures/golden-trace/` directory with a
//! note in the PR about why the trajectory moved.

use pcr::core::declog::{DecisionLog, DecisionLogWriter};
use pcr::core::{PcrContainer, PcrDataset, PcrDatasetBuilder, SampleMeta, DECISION_LOG_FILE};
use pcr::jpeg::ImageBuf;
use pcr::loader::{
    open_container_store, DecodeMode, FidelityConfig, FidelityController, IoModel, LoaderConfig,
    ParallelConfig, ParallelLoader, RecordSource, ShardStoreConfig,
};
use pcr::metrics::{FidelityTrace, TriggerKind};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Epochs in the golden run. The plateau window (clamped to 2) needs
/// 2*window observations, so the tune-down lands on epoch 4.
const GOLDEN_EPOCHS: u64 = 6;
/// Pinned per-group MSSIM scores: group 2 is the cheapest clearing the
/// default 0.95 threshold, so the plateau switch targets it.
const GOLDEN_SCORES: [(usize, f64); 4] = [(1, 0.90), (2, 0.96), (5, 0.99), (10, 1.0)];

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden-trace/container")
}

/// The deterministic dataset behind the fixture: 12 procedurally
/// patterned 32x32 images, 4 per record, 10 scan groups. No RNG, no
/// clock — regenerating it always yields identical bytes.
fn golden_dataset() -> PcrDataset {
    let mut b = PcrDatasetBuilder::new(4, 10).with_name_prefix("golden");
    for i in 0..12u32 {
        let mut data = Vec::new();
        for y in 0..32u32 {
            for x in 0..32u32 {
                data.push(((x * 3 + y * 7 + i * 5) % 256) as u8);
                data.push(((x + y * 2 + i * 11) % 256) as u8);
                data.push(((x * 2 + y + i * 3) % 256) as u8);
            }
        }
        let img = ImageBuf::from_raw(32, 32, 3, data).unwrap();
        b.add_image(SampleMeta { label: i % 3, id: format!("g{i}") }, &img, 85).unwrap();
    }
    b.finish().unwrap()
}

/// The scripted loss curve: one big improvement, then a flatline. With
/// `plateau_window: 1` (clamped to 2) the detector fires after epoch 3,
/// so epoch 4 runs at the tuned-down group with trigger `plateau`.
fn golden_loss(epoch: u64) -> f64 {
    if epoch == 0 {
        1.0
    } else {
        0.5
    }
}

/// Replays the golden controller run against `container_dir`, appending
/// every decision to a fresh log at `log_path`.
fn replay(container_dir: &Path, log_path: &Path) -> FidelityTrace {
    let opened = open_container_store(container_dir, &ShardStoreConfig::default()).expect("open");
    let loader: ParallelLoader<dyn RecordSource> = ParallelLoader::new(
        Arc::clone(&opened.store),
        Arc::clone(&opened.source) as Arc<dyn RecordSource>,
        ParallelConfig {
            loader: LoaderConfig {
                threads: 1,
                decode: DecodeMode::Skip,
                seed: 7,
                ..LoaderConfig::at_group(10)
            },
            io: IoModel::Instant,
            ..ParallelConfig::default()
        },
    );
    let fidelity = FidelityConfig { plateau_window: 1, ..FidelityConfig::default() };
    let mut ctrl = FidelityController::new(fidelity, GOLDEN_SCORES.to_vec());
    let _ = std::fs::remove_file(log_path);
    let mut w = DecisionLogWriter::open(log_path).expect("open fresh log");
    loader
        .run_dynamic_logged(GOLDEN_EPOCHS, &mut ctrl, |e, _| golden_loss(e), Some(&mut w))
        .expect("logged golden run")
}

/// Regenerates the committed fixture in place (container + log).
fn regen_fixtures(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
    pcr::core::write_container(&golden_dataset(), dir, 2).expect("pack fixture");
    replay(dir, &dir.join(DECISION_LOG_FILE));
}

fn regen_requested() -> bool {
    std::env::var("PCR_REGEN_GOLDEN").is_ok_and(|v| v == "1")
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pcr-golden-{tag}-{}", std::process::id()))
}

#[test]
fn golden_trace_replays_byte_for_byte() {
    let dir = fixture_dir();
    if regen_requested() {
        regen_fixtures(&dir);
        println!("regenerated golden fixtures in {}", dir.display());
    }
    let committed_path = dir.join(DECISION_LOG_FILE);
    let committed = std::fs::read(&committed_path).expect("committed decisions.pcrd");

    let replay_path = scratch("replay");
    replay(&dir, &replay_path);
    let replayed = std::fs::read(&replay_path).expect("replayed log");
    std::fs::remove_file(&replay_path).unwrap();

    if committed != replayed {
        // Byte drift: decode both sides and explain per decision instead
        // of dumping hex. `diff` is None only if the divergence is in
        // framing alone, so fall through to a generic message then.
        let want = DecisionLog::parse(&committed).expect("committed log parses");
        let got = DecisionLog::parse(&replayed).expect("replayed log parses");
        let explain = want
            .diff(&got)
            .unwrap_or_else(|| "records identical; framing bytes differ".to_string());
        panic!(
            "golden decision log diverged from {}:\n{explain}\n\
             If the controller change is intentional, regenerate with\n\
             PCR_REGEN_GOLDEN=1 cargo test --test golden_trace\n\
             and explain the new trajectory in the PR.",
            committed_path.display()
        );
    }
}

#[test]
fn golden_container_verifies_and_log_explains_the_trajectory() {
    let dir = fixture_dir();
    if regen_requested() {
        regen_fixtures(&dir);
    }
    // The fixture is a real container: shards verify, and container-level
    // verify() covers the decision log's CRC chain too.
    let container = PcrContainer::open(&dir).expect("open fixture container");
    container.verify().expect("fixture container verifies");
    let log = container.decision_log().expect("read log").expect("log present");
    log.verify().expect("chain intact");
    assert_eq!(log.len(), GOLDEN_EPOCHS as usize);

    // The log alone answers "why did fidelity change at epoch 4": the
    // loss plateaued, and the probe scores carried in the record show
    // group 2 was the cheapest one clearing the quality bar.
    let records = log.records();
    assert_eq!(records.first().unwrap().trigger, TriggerKind::Start);
    let tuned = records.iter().find(|r| r.trigger == TriggerKind::Plateau).expect("a plateau");
    assert_eq!(tuned.epoch, 4);
    assert_eq!(tuned.scan_group, 2);
    assert!(tuned.bytes_saved() > 0, "tuned epoch reads a shorter prefix");
    assert_eq!(tuned.probe_scores.len(), GOLDEN_SCORES.len());
    assert!(
        tuned.probe_scores.iter().any(|&(g, s)| g == 2 && s >= 0.95),
        "the record carries the score that justified group 2"
    );
    // Epochs before the switch hold at full quality and save nothing.
    for r in records.iter().take(4) {
        assert_eq!(r.bytes_saved(), 0, "epoch {} ran at full quality", r.epoch);
        assert!(matches!(r.trigger, TriggerKind::Start | TriggerKind::Hold));
    }
    assert!(log.bytes_saved() > 0, "rollup shows the run beat fixed-full-quality");
}

#[test]
fn golden_divergence_produces_a_readable_per_decision_diff() {
    let dir = fixture_dir();
    if regen_requested() {
        regen_fixtures(&dir);
    }
    let committed =
        std::fs::read(dir.join(DECISION_LOG_FILE)).expect("committed decisions.pcrd");
    let want = DecisionLog::parse(&committed).expect("parses");

    // Simulate a controller regression: the plateau switch picks group 5
    // instead of 2 and reads more bytes.
    let mut records = want.records().to_vec();
    let tuned = records.iter().position(|r| r.trigger == TriggerKind::Plateau).expect("plateau");
    let broken = records.get_mut(tuned).unwrap();
    broken.scan_group = 5;
    broken.bytes_read += 1234;
    let got = DecisionLog::from_records(records).expect("re-encode");

    let diff = want.diff(&got).expect("divergence is detected");
    assert!(diff.contains(&format!("decision {tuned}")), "names the decision: {diff}");
    assert!(diff.contains("scan_group"), "names the field: {diff}");
    assert!(diff.contains("expected 2"), "shows the expected value: {diff}");
    assert!(diff.contains("actual 5"), "shows the actual value: {diff}");
    assert!(diff.contains("bytes_read"), "reports every diverging field: {diff}");
    // And identical logs produce no diff at all.
    assert!(want.diff(&want).is_none());
}
