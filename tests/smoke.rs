//! Smoke test for the tier-1 verify path: one record through
//! `PcrRecordBuilder` -> `PcrRecord::parse` -> `offset_for_group`, with
//! the PCR prefix invariants checked at every scan group.

use pcr::core::{PcrRecord, PcrRecordBuilder, SampleMeta};
use pcr::jpeg::ImageBuf;

fn gradient_image(side: u32, phase: u32) -> ImageBuf {
    let mut data = Vec::with_capacity((side * side * 3) as usize);
    for y in 0..side {
        for x in 0..side {
            let v = ((x * 5 + y * 3 + phase * 11) % 256) as u8;
            data.push(v);
            data.push(v.wrapping_add(64));
            data.push(255 - v);
        }
    }
    ImageBuf::from_raw(side, side, 3, data).expect("valid raw image")
}

#[test]
fn record_roundtrip_with_monotone_group_prefixes() {
    let mut builder = PcrRecordBuilder::with_default_groups();
    for i in 0..3u32 {
        let img = gradient_image(48, i);
        builder
            .add_image(SampleMeta { label: i, id: format!("smoke-{i}") }, &img, 85)
            .expect("image encodes into record");
    }
    let bytes = builder.build().expect("record builds");

    let record = PcrRecord::parse(&bytes).expect("record parses");
    assert_eq!(record.num_images(), 3);
    let n = record.num_groups();
    assert!(n >= 2, "default grouping must have multiple scan groups");
    assert_eq!(record.available_groups(), n, "full buffer covers all groups");
    assert_eq!(record.labels(), vec![0, 1, 2]);
    for i in 0..3 {
        assert_eq!(record.meta(i).id, format!("smoke-{i}"));
    }

    // Prefix offsets are strictly inside the buffer and monotonically
    // non-decreasing across scan groups, ending exactly at the full size
    // (the zero-space-overhead property of the format).
    let mut last = record.offset_for_group(0);
    assert!(last > 0, "group 0 still carries metadata and headers");
    for g in 1..=n {
        let off = record.offset_for_group(g);
        assert!(off >= last, "offset regressed at group {g}: {off} < {last}");
        assert!(
            off > record.offset_for_group(g - 1) || record.group_size(g) == 0,
            "non-empty group {g} must advance the prefix"
        );
        last = off;
    }
    assert_eq!(last, bytes.len(), "last group offset is the full record");

    // Every group prefix re-parses and reports exactly g available groups,
    // and its images decode at that quality with correct dimensions.
    for g in 1..=n {
        let prefix = &bytes[..record.offset_for_group(g)];
        let view = PcrRecord::parse(prefix).expect("prefix parses");
        assert_eq!(view.available_groups(), g, "prefix covers groups 1..={g}");
        assert_eq!(view.num_images(), 3);
        let img = view.decode_image(1, g).expect("prefix image decodes");
        assert_eq!(img.width(), 48);
        assert_eq!(img.height(), 48);
    }
}
