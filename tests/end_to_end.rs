//! End-to-end integration: synthetic dataset -> PCR encoding -> simulated
//! storage -> prefetching loader -> partial decode -> training, plus
//! head-to-head format equivalence checks.

use pcr::core::{PcrRecord, RecordFile};
use pcr::datasets::{DatasetSpec, Scale, SyntheticDataset};
use pcr::loader::{populate_store, DecodeMode, LoaderConfig, PcrLoader};
use pcr::nn::{LrSchedule, ModelSpec};
use pcr::sim::{featurize, train_fixed_group, TrainConfig};
use pcr::storage::{DeviceProfile, ObjectStore};

fn dataset() -> SyntheticDataset {
    SyntheticDataset::generate(&DatasetSpec::celebahq_smile_like(Scale::Tiny))
}

#[test]
fn pipeline_delivers_decodable_images_at_every_group() {
    let ds = dataset();
    let (pcr, _) = pcr::datasets::to_pcr_dataset(&ds, 8);
    let store = ObjectStore::new(DeviceProfile::ssd_sata());
    populate_store(&store, &pcr);
    for g in [1usize, 2, 5, 10] {
        let cfg = LoaderConfig {
            threads: 4,
            scan_group: g,
            shuffle: true,
            seed: 3,
            decode: DecodeMode::Real,
            ..LoaderConfig::default()
        };
        let epoch = PcrLoader::new(&store, &pcr.db, cfg).run_epoch(0, 0.0);
        let images: usize = epoch.records.iter().map(|r| r.images.len()).sum();
        assert_eq!(images, ds.train.len(), "group {g} delivered all images");
        for rec in &epoch.records {
            for img in &rec.images {
                assert_eq!(img.width(), 64);
                assert_eq!(img.channels(), 3);
            }
        }
    }
}

#[test]
fn full_quality_pcr_equals_record_file_pixels() {
    // The same image stored in a PCR (progressive, regrouped) and a
    // record file (baseline JPEG) must decode to the same pixels up to the
    // progressive/sequential equivalence (identical coefficients).
    let ds = dataset();
    let img = &ds.train[0].image;
    let q = ds.spec.jpeg_quality;

    let mut pcr_builder = pcr::core::PcrRecordBuilder::with_default_groups();
    pcr_builder
        .add_image(pcr::core::SampleMeta { label: 0, id: "x".into() }, img, q)
        .unwrap();
    let pcr_bytes = pcr_builder.build().unwrap();
    let record = PcrRecord::parse(&pcr_bytes).unwrap();
    let from_pcr = record.decode_image(0, 10).unwrap();

    let mut rf_builder = pcr::core::RecordFileBuilder::new();
    rf_builder
        .add_image(pcr::core::SampleMeta { label: 0, id: "x".into() }, img, q)
        .unwrap();
    let rf_bytes = rf_builder.build().unwrap();
    let rf = RecordFile::parse(&rf_bytes).unwrap();
    let from_rf = rf.decode(0).unwrap();

    assert_eq!(from_pcr, from_rf);
}

#[test]
fn pcr_space_overhead_is_small() {
    // Paper: "There is no space overhead for PCR conversion as the number
    // of bytes occupied by all formats is within 5%." Our per-scan
    // optimized Huffman tables add some overhead on very small images, so
    // we allow a slightly wider envelope and verify PCR never duplicates
    // data the way static multi-quality encoding does.
    let ds = SyntheticDataset::generate(&DatasetSpec::imagenet_like(Scale::Tiny));
    let (pcr, _) = pcr::datasets::to_pcr_dataset(&ds, 8);
    let (records, _) = pcr::datasets::to_record_files(&ds, 8, ds.spec.jpeg_quality);
    let pcr_bytes = pcr.db.total_bytes() as f64;
    let rf_bytes: f64 = records.iter().map(|r| r.len() as f64).sum();
    let ratio = pcr_bytes / rf_bytes;
    assert!(
        (0.7..1.35).contains(&ratio),
        "PCR/record-file size ratio {ratio:.3} out of envelope"
    );
    // Four static qualities ~ 3-4x the single PCR copy.
    let mut static_total = 0f64;
    for q in [50u8, 75, 90, 95] {
        let (rs, _) = pcr::datasets::to_record_files(&ds, 8, q);
        static_total += rs.iter().map(|r| r.len() as f64).sum::<f64>();
    }
    assert!(static_total > 2.0 * pcr_bytes, "static multi-quality should amplify space");
}

#[test]
fn training_through_stored_pcr_features_learns() {
    let ds = dataset();
    let model = ModelSpec::resnet_like();
    let feats = featurize(&ds, &model, &[1, 2, 5, 10]);
    let (pcr, _) = pcr::datasets::to_pcr_dataset(&ds, 8);
    let cfg = TrainConfig {
        epochs: 8,
        batch_size: 8,
        workers: 2,
        lr: LrSchedule { base_lr: 0.05, warmup_epochs: 0.0, decay_epochs: vec![], decay_factor: 1.0 },
        eval_every: 2,
        ..TrainConfig::default()
    };
    let trace = train_fixed_group(&feats, &pcr, &model, &cfg, 5, "celeb");
    assert!(trace.final_acc > 0.8, "accuracy {}", trace.final_acc);
    assert!(trace.total_time > 0.0);
}

#[test]
fn scan_group_bytes_drop_2x_to_10x() {
    // The paper's headline: "drop the effective size ... of a record by a
    // factor of 2-10x" for lower-quality views.
    let ds = SyntheticDataset::generate(&DatasetSpec::imagenet_like(Scale::Tiny));
    let (pcr, _) = pcr::datasets::to_pcr_dataset(&ds, 8);
    let full = pcr.db.bytes_at_group(10) as f64;
    let g1 = pcr.db.bytes_at_group(1) as f64;
    let g5 = pcr.db.bytes_at_group(5) as f64;
    assert!(full / g1 >= 2.0, "group-1 reduction only {:.2}x", full / g1);
    assert!(full / g1 <= 20.0);
    assert!(full / g5 >= 1.5, "group-5 reduction only {:.2}x", full / g5);
}

#[test]
fn cache_pressure_drops_with_scan_group() {
    // Reading prefixes shrinks the working set, so a fixed-size cache
    // covers a larger fraction of it (the paper's in-memory claim).
    let ds = dataset();
    let (pcr, _) = pcr::datasets::to_pcr_dataset(&ds, 8);
    let cache_bytes = pcr.db.total_bytes() / 2;
    let run = |g: usize| {
        let store = ObjectStore::with_cache(DeviceProfile::hdd_7200rpm(), cache_bytes);
        populate_store(&store, &pcr);
        let cfg = LoaderConfig {
            threads: 2,
            scan_group: g,
            shuffle: false,
            seed: 0,
            decode: DecodeMode::Skip,
            ..LoaderConfig::default()
        };
        let loader = PcrLoader::new(&store, &pcr.db, cfg);
        let mut t = 0.0;
        for e in 0..3u64 {
            let r = loader.run_epoch(e, t);
            t = r.records.last().map_or(t, |rec| rec.ready);
        }
        store.cache_hit_rate()
    };
    let low = run(1);
    let full = run(10);
    assert!(
        low > full,
        "low-group hit rate {low:.3} should beat full-quality {full:.3}"
    );
}
