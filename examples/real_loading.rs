//! Wall-clock parallel loading: real worker threads, real decodes, real
//! buffers — the measured counterpart of `loading_rates` (which models the
//! same pipeline in virtual time).
//!
//! Generates the dermatology (HAM10000-like) dataset, stores its PCR
//! encoding in an object store behind an emulated remote-object-store
//! latency profile, and sweeps worker counts × scan groups, printing
//! delivered images/second and bytes/image. Two effects should be visible:
//!
//! * scan group 1-2 cuts bytes/image by ~2x or more versus full quality
//!   (the paper's headline storage saving), and
//! * adding workers overlaps storage latency with decode, multiplying
//!   delivered throughput even on a single core.
//!
//! Run with: `cargo run --release --example real_loading`

use pcr::datasets::{to_pcr_dataset, DatasetSpec, Scale, SyntheticDataset};
use pcr::loader::{populate_store, IoModel, ParallelConfig, ParallelLoader};
use pcr::storage::{DeviceProfile, ObjectStore};
use std::sync::Arc;

fn main() {
    let spec = DatasetSpec::ham10000_like(Scale::Tiny);
    println!("generating {} ({} train images)...", spec.name, spec.train_images);
    let ds = SyntheticDataset::generate(&spec);
    let (pcr, _) = to_pcr_dataset(&ds, 8);
    let store = Arc::new(ObjectStore::new(DeviceProfile::remote_object_store()));
    populate_store(&store, &pcr);
    let db = Arc::new(pcr.db.clone());
    println!(
        "{} records, {} images, {:.1} KiB/image at full quality\n",
        db.records.len(),
        db.num_images(),
        db.mean_image_bytes_at_group(db.num_groups()) / 1024.0
    );

    println!("{:>6} {:>7} {:>12} {:>12} {:>12}", "group", "workers", "images/s", "KiB/image", "epoch (s)");
    for group in [1usize, 5, 10] {
        let mut base = 0.0f64;
        for workers in [1usize, 2, 4] {
            let cfg = ParallelConfig {
                io: IoModel::EmulatedLatency,
                ..ParallelConfig::real(workers, group)
            };
            let loader = ParallelLoader::new(Arc::clone(&store), Arc::clone(&db), cfg);
            let epoch = loader.run_epoch(0);
            let rate = epoch.images_per_sec();
            if workers == 1 {
                base = rate;
            }
            println!(
                "{:>6} {:>7} {:>12.1} {:>12.1} {:>12.3}  ({:.2}x vs 1 worker)",
                group,
                workers,
                rate,
                epoch.mean_image_bytes() / 1024.0,
                epoch.wall_seconds,
                rate / base.max(1e-9),
            );
        }
        println!();
    }
}
