//! End-to-end training on the HAM10000-like dermatology dataset (the
//! paper's most storage-bound workload): train the ResNet-18 and
//! ShuffleNetv2 stand-ins at several scan groups and compare
//! time-to-accuracy, reproducing the shape of the paper's Figure 5.
//!
//! ```text
//! cargo run --release --example train_dermatology
//! ```

use pcr::datasets::{DatasetSpec, LabelMap, Scale, SyntheticDataset};
use pcr::nn::{LrSchedule, ModelSpec};
use pcr::sim::{featurize, train_fixed_group, TrainConfig};

fn main() {
    let spec = DatasetSpec::ham10000_like(Scale::Small);
    println!("generating {} ({} train / {} test images)...", spec.name, spec.train_images, spec.test_images);
    let ds = SyntheticDataset::generate(&spec);
    let (pcr, encode_secs) = pcr::datasets::to_pcr_dataset(&ds, 16);
    println!(
        "encoded {} records ({:.1} MiB) in {:.1}s\n",
        pcr.num_records(),
        pcr.db.total_bytes() as f64 / (1024.0 * 1024.0),
        encode_secs
    );

    for model in [ModelSpec::resnet_like(), ModelSpec::shufflenet_like()] {
        println!("=== {} (compute: {:.0} img/s per worker) ===", model.name, model.images_per_sec_fp16);
        let feats = featurize(&ds, &model, &[1, 2, 5, 10]);
        let cfg = TrainConfig {
            label_map: LabelMap::Identity,
            workers: 10,
            batch_size: (ds.train.len() / 8).clamp(4, 128),
            epochs: 30,
            lr: LrSchedule {
                base_lr: 0.1,
                warmup_epochs: 0.0,
                decay_epochs: vec![20.0],
                decay_factor: 0.1,
            },
            eval_every: 2,
            ..TrainConfig::default()
        };
        println!(" group | total time (s) | final top-1 acc");
        let mut baseline_time = None;
        for g in [1usize, 2, 5, 10] {
            let trace = train_fixed_group(&feats, &pcr, &model, &cfg, g, &ds.spec.name);
            if g == 10 {
                baseline_time = Some(trace.total_time);
            }
            println!("  {g:>4} | {:>14.2} | {:.3}", trace.total_time, trace.final_acc);
        }
        if let Some(bt) = baseline_time {
            println!(" (baseline epoch budget: {bt:.2}s of simulated cluster time)\n");
        }
    }
    println!("Expected shape (paper Fig. 5): ResNet is insensitive to the scan group,");
    println!("ShuffleNet needs higher groups; low groups finish epochs faster.");
}
