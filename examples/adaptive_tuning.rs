//! Dynamic scan-group autotuning (paper section 4.5 / Appendix A.6): run
//! the gradient-cosine controller against fixed-group baselines and watch
//! it start at full quality, then drop to the cheapest group whose
//! gradients still agree with the full-quality gradients.
//!
//! ```text
//! cargo run --release --example adaptive_tuning
//! ```

use pcr::datasets::{DatasetSpec, Scale, SyntheticDataset};
use pcr::nn::{LrSchedule, ModelSpec};
use pcr::sim::{featurize, train_dynamic_cosine, train_fixed_group, DynamicConfig, TrainConfig};

fn main() {
    let ds = SyntheticDataset::generate(&DatasetSpec::celebahq_smile_like(Scale::Small));
    let model = ModelSpec::resnet_like();
    let feats = featurize(&ds, &model, &[1, 2, 5, 10]);
    let (pcr, _) = pcr::datasets::to_pcr_dataset(&ds, 16);

    let cfg = TrainConfig {
        workers: 10,
        batch_size: (ds.train.len() / 8).clamp(4, 128),
        epochs: 24,
        lr: LrSchedule {
            base_lr: 0.05,
            warmup_epochs: 0.0,
            decay_epochs: vec![16.0],
            decay_factor: 0.1,
        },
        eval_every: 2,
        ..TrainConfig::default()
    };
    let dyn_cfg = DynamicConfig {
        tune_every: 6,
        initial_tune_epoch: 2,
        ..DynamicConfig::default()
    };

    println!("dynamic (gradient-cosine, threshold {:.0}%):", dyn_cfg.cosine_threshold * 100.0);
    let dynamic = train_dynamic_cosine(&feats, &pcr, &model, &cfg, &dyn_cfg, &ds.spec.name);
    println!(" epoch | group | time (s) | loss   | test acc");
    for p in &dynamic.points {
        println!(
            " {:>5} | {:>5} | {:>8.2} | {:.4} | {}",
            p.epoch,
            p.scan_group,
            p.time,
            p.train_loss,
            if p.test_acc.is_nan() { "-".into() } else { format!("{:.3}", p.test_acc) }
        );
    }

    println!("\nfixed-group baselines:");
    println!(" group | total time (s) | final acc");
    for g in [1usize, 10] {
        let t = train_fixed_group(&feats, &pcr, &model, &cfg, g, &ds.spec.name);
        println!("  {g:>4} | {:>14.2} | {:.3}", t.total_time, t.final_acc);
    }
    println!(
        "\ndynamic: {:.2}s to {:.3} accuracy — it should approach the group-1 run's\n\
         speed while matching the baseline's accuracy (paper Figs. 20-22).",
        dynamic.total_time, dynamic.final_acc
    );
}
