//! Full-cluster simulation in the paper's configuration: a 5-OSD
//! Ceph-like storage cluster feeding 10 GPU workers, with the compute
//! unit's data stalls traced per iteration (paper Appendix A.1 / Figure
//! 11) and the bandwidth-vs-compute roofline (Figure 14).
//!
//! ```text
//! cargo run --release --example cluster_simulation
//! ```

use pcr::datasets::{DatasetSpec, Scale, SyntheticDataset};
use pcr::loader::{populate_store, DecodeMode, LoaderConfig, PcrLoader};
use pcr::nn::ModelSpec;
use pcr::sim::{roofline_sweep, run_pipeline, ComputeUnit};
use pcr::storage::{DeviceProfile, ObjectStore};

fn main() {
    let ds = SyntheticDataset::generate(&DatasetSpec::imagenet_like(Scale::Small));
    let (pcr, _) = pcr::datasets::to_pcr_dataset(&ds, 16);

    // The paper's hardware ratio, rescaled to our image sizes: see
    // pcr-bench's Ctx::storage_for for the calibration rationale.
    let sample_bytes = pcr.db.mean_image_bytes_at_group(10);
    let scale = sample_bytes / (110.0 * 1024.0) * 0.35;
    let paper = DeviceProfile::paper_cluster();
    let cluster = DeviceProfile {
        name: "ceph-5osd-scaled".into(),
        sequential_bw_mib_s: paper.sequential_bw_mib_s * scale,
        seek_latency_us: paper.seek_latency_us * scale,
        request_overhead_us: paper.request_overhead_us * scale,
    };
    let store = ObjectStore::new(cluster.clone());
    populate_store(&store, &pcr);

    let model = ModelSpec::resnet_like();
    let compute = ComputeUnit {
        images_per_sec: model.images_per_sec_fp16 * 10.0,
        batch_size: 128,
    };
    println!(
        "cluster: {:.1} MiB/s storage, {:.0} img/s aggregate compute ({} x10)",
        cluster.sequential_bw_mib_s, compute.images_per_sec, model.name
    );

    println!("\nPer-iteration data stalls (first epoch, batch=128):");
    println!(" group | stall fraction | achieved img/s | epoch time (s)");
    for g in [1usize, 2, 5, 10] {
        store.device().reset();
        let cfg = LoaderConfig {
            threads: 8,
            scan_group: g,
            shuffle: true,
            seed: 7,
            decode: DecodeMode::modeled_progressive(),
            ..LoaderConfig::default()
        };
        let epoch = PcrLoader::new(&store, &pcr.db, cfg).run_epoch(0, 0.0);
        let trace = run_pipeline(&epoch, &compute, 0.0);
        println!(
            " {g:>5} | {:>14.3} | {:>14.0} | {:>13.3}",
            trace.stall_fraction(),
            trace.images_per_sec(),
            trace.duration
        );
    }

    println!("\nRoofline (Figure 14): system throughput vs bytes/image");
    println!(" bytes/img | loader img/s | system img/s | bound by");
    for pt in roofline_sweep(&cluster, compute.images_per_sec, (200.0, 20_000.0), 10, 16) {
        println!(
            " {:>9.0} | {:>12.0} | {:>12.0} | {}",
            pt.bytes_per_item,
            pt.loader_throughput,
            pt.system_throughput,
            if pt.compute_bound { "compute" } else { "storage" }
        );
    }
    println!("\nLow scan groups move the workload left along the roofline until the");
    println!("compute roof binds — exactly the paper's bandwidth-reduction argument.");
}
