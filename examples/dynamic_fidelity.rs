//! Online fidelity control on the wall-clock loader — the paper's
//! *dynamic* compression knob (§4.5) end to end:
//!
//! 1. build the HAM10000-like dataset as PCR records in a cache-backed
//!    object store (with readahead, so adjacent prefix reads coalesce),
//! 2. probe per-scan-group MSSIM against full quality (`pcr-metrics`),
//! 3. train "at full quality" (a synthetic loss curve here) until the
//!    plateau detector trips, at which point the `FidelityController`
//!    drops the scan-group prefix to the cheapest qualifying group,
//! 4. export the per-epoch trajectory as JSON (the `BENCH_*.json` format
//!    the bench harness records).
//!
//! Run with: `cargo run --release --example dynamic_fidelity`

use pcr::datasets::{to_pcr_dataset, DatasetSpec, Scale, SyntheticDataset};
use pcr::loader::{
    populate_store, probe_group_scores, FidelityConfig, FidelityController, ParallelConfig,
    ParallelLoader,
};
use pcr::storage::{DeviceProfile, ObjectStore};
use std::sync::Arc;

fn main() {
    let ds = SyntheticDataset::generate(&DatasetSpec::ham10000_like(Scale::Tiny));
    let (pcr_ds, _) = to_pcr_dataset(&ds, 8);
    let store = Arc::new(ObjectStore::with_cache(DeviceProfile::remote_object_store(), 1 << 30));
    store.set_readahead(64 << 10);
    populate_store(&store, &pcr_ds);
    let db = Arc::new(pcr_ds.db.clone());
    let full = db.num_groups();

    // Per-group quality scores: MSSIM vs full quality on a record sample.
    let scores = probe_group_scores(&store, &db, &[1, 2, 5, full], 12);
    println!("probed MSSIM per scan group:");
    for &(g, s) in &scores {
        println!("  group {g:>2}: {s:.4}");
    }

    // The controller starts at full quality and watches the loss.
    let mut controller = FidelityController::new(
        FidelityConfig { plateau_window: 1, ..FidelityConfig::default() },
        scores,
    );

    // Synthetic loss: improves, then flatlines — a stand-in for a real
    // training loop (see examples/train_dermatology.rs for one).
    let loss_at = |epoch: u64| 0.4 + 0.6 * 0.3f64.powi(epoch.min(3) as i32);

    let loader =
        ParallelLoader::new(Arc::clone(&store), Arc::clone(&db), ParallelConfig::real(4, full));
    let trace = loader.run_dynamic(8, &mut controller, |e, _| loss_at(e));

    println!("\n{:>6} {:>6} {:>12} {:>10} {:>10} {:>8}", "epoch", "group", "bytes", "img/s", "hit rate", "loss");
    for e in &trace.epochs {
        println!(
            "{:>6} {:>6} {:>12} {:>10.1} {:>10.2} {:>8.3}",
            e.epoch, e.scan_group, e.bytes_read, e.images_per_sec, e.cache_hit_rate, e.loss
        );
    }
    println!(
        "\ntotal: {} bytes over {} images (fixed full quality would read {})",
        trace.total_bytes(),
        trace.total_images(),
        8 * db.bytes_at_group(full),
    );
    println!("controller decisions: {:?}", controller.decisions());
    println!("\ntrajectory JSON:\n{}", trace.to_json());
}
