//! The sharded container round trip in one file: pack a synthetic
//! dataset to on-disk shards, reopen it, and stream it through both the
//! virtual-time and wall-clock loaders — the library face of
//! `pcr pack` / `pcr bench` (see `docs/GUIDE.md` for the CLI tour and
//! `docs/FORMAT.md` for the byte-level format).
//!
//! Run with: `cargo run --release --example sharded_container`

use pcr::datasets::{pack_to_container, DatasetSpec, Scale, SyntheticDataset};
use pcr::loader::{
    open_container_store, DecodeMode, LoaderConfig, ParallelConfig, ParallelLoader, PcrLoader,
    RecordSource, ShardStoreConfig,
};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pack: generate the dermatology stand-in and write shards.
    let dir = std::env::temp_dir().join(format!("pcr-example-container-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let ds = SyntheticDataset::generate(&DatasetSpec::ham10000_like(Scale::Tiny));
    let (manifest, secs) = pack_to_container(&ds, &dir, 4, 3)?;
    println!(
        "packed {} images into {} shard(s) / {} record(s) in {secs:.2}s at {}",
        manifest.num_images(),
        manifest.shards.len(),
        manifest.num_records(),
        dir.display()
    );

    // 2. Reopen: checksum-verified, loaded into an object store with
    //    per-shard readahead, NVMe-class device profile.
    let opened = open_container_store(&dir, &ShardStoreConfig::default())?;
    println!(
        "reopened: {} records, {} images, {} scan groups",
        opened.source.num_records(),
        opened.source.num_images(),
        opened.source.num_groups()
    );

    // 3. Virtual time: a modeled epoch per scan group — the fidelity
    //    byte/time tradeoff from on-disk shards.
    println!("\nmodeled epochs (virtual time):");
    println!("{:>6} {:>12} {:>12}", "group", "bytes", "img/s");
    for g in [1usize, 2, 5, 10] {
        opened.store.device().reset();
        let cfg = LoaderConfig { decode: DecodeMode::Skip, ..LoaderConfig::at_group(g) };
        let epoch = PcrLoader::over(&opened.store, &*opened.source, cfg).run_epoch(0, 0.0);
        println!("{:>6} {:>12} {:>12.0}", g, epoch.bytes, epoch.images_per_sec());
    }

    // 4. Wall clock: real worker threads decoding pixels out of the
    //    same shard objects.
    let loader = ParallelLoader::new(
        Arc::clone(&opened.store),
        Arc::clone(&opened.source),
        ParallelConfig::real(4, 2),
    );
    let epoch = loader.run_epoch(0);
    println!(
        "\nwall clock: {} images decoded at scan group 2, {} bytes, {:.0} img/s, cache hit rate {:.2}",
        epoch.images,
        epoch.bytes,
        epoch.images_per_sec(),
        opened.store.cache_hit_rate()
    );

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
