//! Reader microbenchmark (paper Appendix A.5 / Figure 18): PCR records on
//! a simulated SATA SSD, an 8-thread loader, and throughput measured per
//! scan group — including the Lemma A.3 prediction that throughput scales
//! with the inverse of mean bytes per image.
//!
//! ```text
//! cargo run --release --example loading_rates
//! ```

use pcr::datasets::{DatasetSpec, Scale, SyntheticDataset};
use pcr::loader::{populate_store, DecodeMode, LoaderConfig, PcrLoader};
use pcr::storage::{DeviceProfile, ObjectStore};

fn main() {
    let ds = SyntheticDataset::generate(&DatasetSpec::celebahq_smile_like(Scale::Small));
    // Big records amortize per-request overhead, as the paper's
    // 1024-image records do.
    let (pcr, _) = pcr::datasets::to_pcr_dataset(&ds, 128);
    let store = ObjectStore::new(DeviceProfile::ssd_sata());
    populate_store(&store, &pcr);
    println!(
        "dataset: {} images in {} records, {:.2} MiB at full quality",
        pcr.db.num_images(),
        pcr.num_records(),
        pcr.db.total_bytes() as f64 / (1024.0 * 1024.0)
    );
    println!("device: {} ({} MiB/s)\n", store.device().profile().name, store.device().profile().sequential_bw_mib_s);

    let run = |g: usize| {
        store.device().reset();
        let cfg = LoaderConfig {
            threads: 8,
            scan_group: g,
            shuffle: false,
            seed: 0,
            decode: DecodeMode::Skip,
            ..LoaderConfig::default()
        };
        PcrLoader::new(&store, &pcr.db, cfg).run_epoch(0, 0.0)
    };

    let full = run(10);
    let full_rate = full.images_per_sec();
    let full_bytes = pcr.db.mean_image_bytes_at_group(10);

    println!(" scan | KiB/img | measured img/s | predicted img/s (Lemma A.3)");
    for g in 1..=10usize {
        let r = run(g);
        let mean_bytes = pcr.db.mean_image_bytes_at_group(g);
        let predicted = full_rate * full_bytes / mean_bytes;
        println!(
            " {g:>4} | {:>7.1} | {:>14.0} | {:>14.0}",
            mean_bytes / 1024.0,
            r.images_per_sec(),
            predicted
        );
    }
    println!("\nAs in the paper: bandwidth is the bottleneck, so the images/second");
    println!("rate is simply the inverse of the mean bytes read per image.");
}
