//! Quickstart: encode images into a PCR record, read byte *prefixes* at
//! several scan groups, and show the size/quality trade-off.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pcr::core::{PcrRecord, PcrRecordBuilder, SampleMeta};
use pcr::jpeg::ImageBuf;

fn synthetic_photo(seed: u32, side: u32) -> ImageBuf {
    let mut data = Vec::with_capacity((side * side * 3) as usize);
    for y in 0..side {
        for x in 0..side {
            let fx = x as f32 / side as f32;
            let fy = y as f32 / side as f32;
            let v = 128.0
                + 70.0 * (fx * 9.0 + seed as f32).sin() * (fy * 6.0).cos()
                + 25.0 * ((x + y * 3) % 7) as f32 / 7.0;
            data.push(v.clamp(0.0, 255.0) as u8);
            data.push((v * 0.8).clamp(0.0, 255.0) as u8);
            data.push((255.0 - v * 0.5).clamp(0.0, 255.0) as u8);
        }
    }
    ImageBuf::from_raw(side, side, 3, data).expect("valid image")
}

fn main() {
    // 1. Build a record: each image is progressive-encoded and its scans
    //    are regrouped so equal-quality deltas sit together on disk.
    let mut builder = PcrRecordBuilder::with_default_groups();
    for i in 0..8u32 {
        builder
            .add_image(
                SampleMeta { label: i % 2, id: format!("photo-{i:03}") },
                &synthetic_photo(i, 128),
                90,
            )
            .expect("encode image");
    }
    let bytes = builder.build().expect("serialize record");
    let record = PcrRecord::parse(&bytes).expect("parse");
    println!(
        "record: {} images, {} scan groups, {} bytes total",
        record.num_images(),
        record.num_groups(),
        bytes.len()
    );

    // 2. Reading quality g = reading a byte *prefix*. No seeks, no extra
    //    copies of the dataset.
    println!("\n group | prefix bytes | % of full | PSNR vs full (dB)");
    let reference = record.decode_image(0, record.num_groups()).expect("decode full");
    for g in [1usize, 2, 5, 10] {
        let prefix_len = record.offset_for_group(g);
        let prefix = &bytes[..prefix_len];
        // A loader would hand exactly these bytes to the decoder:
        let view = PcrRecord::parse(prefix).expect("parse prefix");
        assert_eq!(view.available_groups(), g);
        let img = view.decode_image(0, g).expect("decode at group");
        let psnr = pcr::jpeg::psnr(&reference, &img);
        println!(
            "  {g:>4} | {prefix_len:>12} | {:>8.1}% | {}",
            100.0 * prefix_len as f64 / bytes.len() as f64,
            if psnr.is_infinite() { "exact".to_string() } else { format!("{psnr:.1}") }
        );
    }

    // 3. Labels live in the metadata block ("scan group 0"), readable
    //    without touching any image bytes.
    let meta_only = &bytes[..record.offset_for_group(0)];
    let view = PcrRecord::parse(meta_only).expect("metadata prefix");
    println!("\nlabels from a {}-byte metadata read: {:?}", meta_only.len(), view.labels());
}
