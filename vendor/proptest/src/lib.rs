//! Offline stand-in for the subset of `proptest` used by this workspace
//! (the build environment has no network access to crates.io).
//!
//! Cases are generated from a deterministic per-test RNG, so runs are
//! reproducible; shrinking is not implemented — a failing case panics with
//! the values produced by the `prop_assert*` message instead.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample_one(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample_one(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample_one(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample_one(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample_one(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample_one(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample_one(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample_one(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample_one(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// The full-range strategy for the type.
    fn arbitrary() -> AnyStrategy<Self>;
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> AnyStrategy<$t> {
                AnyStrategy { _marker: std::marker::PhantomData }
            }
        }

        impl Strategy for AnyStrategy<$t> {
            type Value = $t;

            fn sample_one(&self, rng: &mut StdRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary() -> AnyStrategy<bool> {
        AnyStrategy { _marker: std::marker::PhantomData }
    }
}

impl Strategy for AnyStrategy<bool> {
    type Value = bool;

    fn sample_one(&self, rng: &mut StdRng) -> bool {
        rng.gen::<bool>()
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    T::arbitrary()
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, StdRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec()`].
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample_one(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample_one(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` with length drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Namespace mirror so `prop::collection::vec` resolves.
pub mod prop {
    pub use crate::collection;
}

/// Resolves the per-property case count: the `PROPTEST_CASES`
/// environment variable overrides the config's count when set (upstream
/// proptest's knob — CI's nightly fuzz job raises it fleet-wide without
/// touching every `proptest_config` block).
pub fn resolved_cases(configured: u32) -> u32 {
    if let Ok(s) = std::env::var("PROPTEST_CASES") {
        if let Ok(v) = s.parse::<u32>() {
            return v;
        }
    }
    configured
}

/// Derives the deterministic per-test seed (overridable for replay via the
/// `PROPTEST_SEED` environment variable).
pub fn test_seed(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse::<u64>() {
            return v;
        }
    }
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Fresh RNG for one property-test case.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    StdRng::seed_from_u64(test_seed(test_name) ^ (u64::from(case) << 32))
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares deterministic property tests, mirroring proptest's macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..$crate::resolved_cases(config.cases) {
                    let mut rng = $crate::case_rng(stringify!($name), case);
                    $(
                        let $pat = $crate::Strategy::sample_one(&($strat), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_sample_in_bounds() {
        let mut rng = crate::case_rng("shim", 0);
        let strat = (3u32..7, 0u32..2).prop_map(|(a, b)| a * 10 + b);
        for _ in 0..100 {
            let v = strat.sample_one(&mut rng);
            assert!((30..=61).contains(&v));
        }
        let vs = collection::vec(1usize..4, 2..5).sample_one(&mut rng);
        assert!((2..5).contains(&vs.len()));
        assert!(vs.iter().all(|&x| (1..4).contains(&x)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_form_runs(x in 0u32..10, ys in prop::collection::vec(any::<u8>(), 1..4)) {
            prop_assert!(x < 10);
            prop_assert!(!ys.is_empty() && ys.len() < 4);
            prop_assert_eq!(ys.len(), ys.clone().len());
        }
    }
}
