//! Offline stand-in for the subset of `parking_lot` used by this workspace
//! (the build environment has no network access to crates.io).
//!
//! Wraps `std::sync` primitives with parking_lot's panic-free,
//! non-poisoning API: `lock()` returns the guard directly and a poisoned
//! mutex is recovered rather than propagated.

use std::sync;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn contended_increments() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
