//! Offline stand-in for the subset of `parking_lot` used by this workspace
//! (the build environment has no network access to crates.io).
//!
//! Wraps `std::sync` primitives with parking_lot's panic-free,
//! non-poisoning API: `lock()` returns the guard directly and a poisoned
//! mutex is recovered rather than propagated.
//!
//! With the `pcr-debug-sync` feature (CI runs the test suite once with it
//! enabled) every lock joins a process-wide lock-order graph: each
//! `Mutex`/`RwLock` gets a lazily-assigned id, every acquisition records
//! a directed edge from each lock the thread already holds to the lock
//! being acquired, and the edge insert runs cycle detection *before*
//! blocking — an inconsistent lock order panics at the acquisition site
//! that completes the cycle instead of deadlocking some future run. See
//! `debug_sync` (only present with the feature enabled).

#![forbid(unsafe_code)]

use std::sync;

#[cfg(feature = "pcr-debug-sync")]
pub mod debug_sync {
    //! The lock-order graph behind the `pcr-debug-sync` feature.
    //!
    //! Ids are assigned lazily on first acquisition (so `Mutex::new` can
    //! stay `const`), a thread-local stack tracks the locks each thread
    //! currently holds, and a global edge set accumulates the observed
    //! "held → acquiring" order over the whole process lifetime. The
    //! graph only ever grows: an A→B order observed in one test combined
    //! with a B→A order observed in another is still a real ordering bug
    //! between those two code paths.

    use std::cell::RefCell;
    use std::collections::{HashMap, HashSet};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex as StdMutex, OnceLock, PoisonError};

    /// Process-wide id source; 0 means "not yet assigned".
    static NEXT_ID: AtomicU64 = AtomicU64::new(1);

    /// Directed edges `held → acquiring`, as an adjacency map.
    static EDGES: OnceLock<StdMutex<HashMap<u64, HashSet<u64>>>> = OnceLock::new();

    thread_local! {
        /// Lock ids this thread currently holds, in acquisition order.
        static HELD: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    }

    fn edges() -> &'static StdMutex<HashMap<u64, HashSet<u64>>> {
        EDGES.get_or_init(|| StdMutex::new(HashMap::new()))
    }

    /// Per-lock id cell: `const`-constructible, assigned on first use.
    #[derive(Debug, Default)]
    pub struct LockCell(AtomicU64);

    impl LockCell {
        /// A cell with no id assigned yet.
        pub const fn new() -> Self {
            LockCell(AtomicU64::new(0))
        }

        /// This lock's id, assigning one on first call.
        pub fn id(&self) -> u64 {
            let cur = self.0.load(Ordering::Relaxed);
            if cur != 0 {
                return cur;
            }
            let fresh = NEXT_ID.fetch_add(1, Ordering::Relaxed);
            match self.0.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => fresh,
                Err(existing) => existing,
            }
        }
    }

    /// RAII token recording that the current thread holds lock `id`;
    /// dropping it (with the guard) pops the thread's held stack.
    #[derive(Debug)]
    pub struct HeldToken {
        id: u64,
    }

    impl Drop for HeldToken {
        fn drop(&mut self) {
            HELD.with(|h| {
                let mut h = h.borrow_mut();
                if let Some(pos) = h.iter().rposition(|&x| x == self.id) {
                    h.remove(pos);
                }
            });
        }
    }

    /// Records the edges for acquiring `id` while holding the thread's
    /// current locks, runs cycle detection, and returns the held token.
    /// Call *before* blocking on the underlying primitive, so an order
    /// inversion panics here instead of deadlocking.
    ///
    /// # Panics
    ///
    /// Panics when the new edge closes a cycle in the process-wide
    /// lock-order graph.
    pub fn acquire(id: u64, what: &str) -> HeldToken {
        let held_now: Vec<u64> = HELD.with(|h| h.borrow().clone());
        let mut cycle: Option<Vec<u64>> = None;
        {
            let mut g = edges().lock().unwrap_or_else(PoisonError::into_inner);
            for &h in &held_now {
                if h != id {
                    g.entry(h).or_default().insert(id);
                }
            }
            // A cycle through `id` means some path leads from `id` back
            // to a lock this thread already holds.
            if !held_now.is_empty() {
                cycle = find_path(&g, id, &held_now);
            }
        }
        // The graph mutex is released before panicking so the poison
        // never cascades into unrelated lock acquisitions.
        if let Some(mut path) = cycle {
            path.insert(0, id);
            panic!(
                "pcr-debug-sync: lock-order cycle acquiring {what} id {id} while holding \
                 {held_now:?}; order path back to a held lock: {path:?}"
            );
        }
        HELD.with(|h| h.borrow_mut().push(id));
        HeldToken { id }
    }

    /// Registers a non-blocking (try) acquisition: no edges are recorded
    /// — a `try_lock` cannot deadlock — but the held stack still tracks
    /// it so *subsequent* blocking acquisitions see it as held.
    pub fn acquire_try(id: u64) -> HeldToken {
        HELD.with(|h| h.borrow_mut().push(id));
        HeldToken { id }
    }

    /// DFS from `from` to any of `targets`; returns the path (excluding
    /// `from`) when found.
    fn find_path(
        g: &HashMap<u64, HashSet<u64>>,
        from: u64,
        targets: &[u64],
    ) -> Option<Vec<u64>> {
        let mut stack = vec![(from, Vec::new())];
        let mut seen = HashSet::new();
        while let Some((node, path)) = stack.pop() {
            if !seen.insert(node) {
                continue;
            }
            if let Some(next) = g.get(&node) {
                for &n in next {
                    let mut p = path.clone();
                    p.push(n);
                    if targets.contains(&n) {
                        return Some(p);
                    }
                    stack.push((n, p));
                }
            }
        }
        None
    }

    /// Number of distinct ordering edges observed so far (test hook).
    pub fn edge_count() -> usize {
        edges()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .map(HashSet::len)
            .sum()
    }

    /// Ids currently held by this thread, in acquisition order (test hook).
    pub fn held_by_current_thread() -> Vec<u64> {
        HELD.with(|h| h.borrow().clone())
    }
}

/// Guard returned by [`Mutex::lock`]; releases the lock on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(feature = "pcr-debug-sync")]
    _held: debug_sync::HeldToken,
    inner: sync::MutexGuard<'a, T>,
}

/// Guard returned by [`RwLock::read`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(feature = "pcr-debug-sync")]
    _held: debug_sync::HeldToken,
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Guard returned by [`RwLock::write`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(feature = "pcr-debug-sync")]
    _held: debug_sync::HeldToken,
    inner: sync::RwLockWriteGuard<'a, T>,
}

macro_rules! impl_guard_deref {
    ($guard:ident) => {
        impl<T: ?Sized> std::ops::Deref for $guard<'_, T> {
            type Target = T;

            fn deref(&self) -> &T {
                &self.inner
            }
        }
    };
}

impl_guard_deref!(MutexGuard);
impl_guard_deref!(RwLockReadGuard);
impl_guard_deref!(RwLockWriteGuard);

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "pcr-debug-sync")]
    order: debug_sync::LockCell,
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(feature = "pcr-debug-sync")]
            order: debug_sync::LockCell::new(),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "pcr-debug-sync")]
        let _held = debug_sync::acquire(self.order.id(), "Mutex");
        let inner = self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard {
            #[cfg(feature = "pcr-debug-sync")]
            _held,
            inner,
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        Some(MutexGuard {
            #[cfg(feature = "pcr-debug-sync")]
            _held: debug_sync::acquire_try(self.order.id()),
            inner,
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "pcr-debug-sync")]
    order: debug_sync::LockCell,
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(feature = "pcr-debug-sync")]
            order: debug_sync::LockCell::new(),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    ///
    /// For lock-order purposes readers and writers are one node: a
    /// read→write inversion still deadlocks once a writer queues up.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "pcr-debug-sync")]
        let _held = debug_sync::acquire(self.order.id(), "RwLock(read)");
        let inner = self.inner.read().unwrap_or_else(sync::PoisonError::into_inner);
        RwLockReadGuard {
            #[cfg(feature = "pcr-debug-sync")]
            _held,
            inner,
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "pcr-debug-sync")]
        let _held = debug_sync::acquire(self.order.id(), "RwLock(write)");
        let inner = self.inner.write().unwrap_or_else(sync::PoisonError::into_inner);
        RwLockWriteGuard {
            #[cfg(feature = "pcr-debug-sync")]
            _held,
            inner,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn contended_increments() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn try_lock_contention_and_release() {
        let m = Mutex::new(5);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 5);
    }

    #[test]
    fn rwlock_readers_then_writer() {
        let l = super::RwLock::new(7);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 14);
        }
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }
}

#[cfg(all(test, feature = "pcr-debug-sync"))]
mod debug_sync_tests {
    use super::{debug_sync, Mutex};

    #[test]
    fn consistent_nesting_is_quiet_and_tracked() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        for _ in 0..3 {
            let ga = a.lock();
            let gb = b.lock();
            assert_eq!(debug_sync::held_by_current_thread().len(), 2);
            drop(gb);
            drop(ga);
        }
        assert!(debug_sync::held_by_current_thread().is_empty());
        assert!(debug_sync::edge_count() >= 1);
    }

    #[test]
    fn guard_drop_pops_held_stack_out_of_order() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        let ga = a.lock();
        let gb = b.lock();
        // Dropping the *outer* guard first must remove the right entry.
        drop(ga);
        assert_eq!(debug_sync::held_by_current_thread().len(), 1);
        drop(gb);
        assert!(debug_sync::held_by_current_thread().is_empty());
    }

    #[test]
    #[should_panic(expected = "lock-order cycle")]
    fn ab_then_ba_panics_before_blocking() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        // Inverted order on the same pair: the edge B→A closes the cycle
        // and must panic here, in one thread, rather than deadlock a
        // two-threaded run.
        let _gb = b.lock();
        let _ga = a.lock();
    }

    #[test]
    #[should_panic(expected = "lock-order cycle")]
    fn three_lock_cycle_is_found() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        let c = Mutex::new(());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        {
            let _gb = b.lock();
            let _gc = c.lock();
        }
        let _gc = c.lock();
        let _ga = a.lock(); // C→A completes A→B→C→A
    }
}
