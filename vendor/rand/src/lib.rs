//! Offline stand-in for the subset of the `rand` crate API used by this
//! workspace (the build environment has no network access to crates.io).
//!
//! Implements `StdRng` as xoshiro256++ seeded via SplitMix64, the `Rng`
//! extension trait (`gen`, `gen_range`, `gen_bool`), `SeedableRng`
//! (`seed_from_u64`, `from_seed`), and `seq::SliceRandom`
//! (`shuffle`, `choose`). Streams are deterministic for a given seed but
//! are *not* bit-compatible with the real `rand` crate.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator by expanding a `u64` with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let out = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&out[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types usable as `gen_range` endpoints.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws uniformly from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        low: Self,
        high: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let (lo, hi) = (low as i128, high as i128);
                let span = if inclusive { hi - lo + 1 } else { hi - lo };
                assert!(span > 0, "gen_range: empty range");
                (lo + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                low + unit * (high - low)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// Returns a generator seeded from system entropy (here: the monotonic
/// clock, since the shim must not depend on external crates).
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    SeedableRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10u32);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(5..=5u32);
            assert_eq!(w, 5);
            let f = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} far from 1000");
        }
    }
}
