//! Offline stand-in for the subset of `crossbeam` used by this workspace
//! (the build environment has no network access to crates.io).
//!
//! Provides `channel::{bounded, unbounded, Sender, Receiver}`: a
//! multi-producer *multi-consumer* channel (std's mpsc receiver is not
//! cloneable, which the loader pipeline's work queue requires) built on a
//! mutex-guarded deque with two condvars.
//!
//! With the `pcr-debug-sync` feature every channel carries
//! happens-before tokens: each send stamps a per-channel monotonic
//! sequence number and every receive asserts it pops the next expected
//! one. That checks, at runtime, the FIFO delivered-exactly-once
//! contract the parallel loader's determinism argument rests on —
//! values leave the channel in exactly the order they entered, none
//! duplicated, none reordered, even under MPMC contention.

#![forbid(unsafe_code)]

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
        /// Sequence stamps paired 1:1 with `queue` entries.
        #[cfg(feature = "pcr-debug-sync")]
        seqs: VecDeque<u64>,
        /// Next sequence number a send will stamp.
        #[cfg(feature = "pcr-debug-sync")]
        next_send_seq: u64,
        /// Sequence number the next pop must carry (FIFO check).
        #[cfg(feature = "pcr-debug-sync")]
        next_recv_seq: u64,
    }

    #[cfg(feature = "pcr-debug-sync")]
    impl<T> State<T> {
        /// Stamps one enqueued value with the next send sequence.
        fn stamp_send(&mut self) {
            self.seqs.push_back(self.next_send_seq);
            self.next_send_seq += 1;
            debug_assert_eq!(self.seqs.len(), self.queue.len());
        }

        /// Consumes one stamp and asserts FIFO order and 1:1 pairing.
        fn stamp_recv(&mut self) {
            let seq = self.seqs.pop_front().expect("a stamp exists for every queued value");
            assert_eq!(
                seq, self.next_recv_seq,
                "pcr-debug-sync: channel delivered send #{seq} when #{} was next in FIFO order",
                self.next_recv_seq
            );
            self.next_recv_seq += 1;
            debug_assert_eq!(self.seqs.len(), self.queue.len());
        }
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// Carries the unsent value, like crossbeam's.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut g = self.shared.state.lock().unwrap();
            g.senders -= 1;
            if g.senders == 0 {
                drop(g);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut g = self.shared.state.lock().unwrap();
            g.receivers -= 1;
            if g.receivers == 0 {
                drop(g);
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full.
        /// Fails (returning the value) once every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut g = self.shared.state.lock().unwrap();
            loop {
                if g.receivers == 0 {
                    return Err(SendError(value));
                }
                match g.cap {
                    Some(cap) if g.queue.len() >= cap => {
                        g = self.shared.not_full.wait(g).unwrap();
                    }
                    _ => break,
                }
            }
            g.queue.push_back(value);
            #[cfg(feature = "pcr-debug-sync")]
            g.stamp_send();
            drop(g);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receives one value, blocking while the channel is empty.
        /// Fails once the channel is empty and every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut g = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = g.queue.pop_front() {
                    #[cfg(feature = "pcr-debug-sync")]
                    g.stamp_recv();
                    drop(g);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if g.senders == 0 {
                    return Err(RecvError);
                }
                g = self.shared.not_empty.wait(g).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut g = self.shared.state.lock().unwrap();
            if let Some(v) = g.queue.pop_front() {
                #[cfg(feature = "pcr-debug-sync")]
                g.stamp_recv();
                drop(g);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if g.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of values currently buffered.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// Whether the buffer is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Total values delivered through this channel so far (all
        /// receivers combined) — the happens-before counter the loader's
        /// delivered-exactly-once test reads back.
        #[cfg(feature = "pcr-debug-sync")]
        pub fn delivered(&self) -> u64 {
            self.shared.state.lock().unwrap().next_recv_seq
        }

        /// Blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Iterator returned by consuming a [`Receiver`].
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
                #[cfg(feature = "pcr-debug-sync")]
                seqs: VecDeque::new(),
                #[cfg(feature = "pcr-debug-sync")]
                next_send_seq: 0,
                #[cfg(feature = "pcr-debug-sync")]
                next_recv_seq: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    /// Creates a channel buffering at most `cap` values (a zero capacity is
    /// treated as 1; the true rendezvous semantics are not needed here).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }

    /// Creates a channel with an unbounded buffer.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn mpmc_work_queue_drains_exactly_once() {
            let (tx, rx) = unbounded::<usize>();
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let sum = Arc::new(AtomicUsize::new(0));
            let count = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    let sum = Arc::clone(&sum);
                    let count = Arc::clone(&count);
                    std::thread::spawn(move || {
                        while let Ok(v) = rx.recv() {
                            sum.fetch_add(v, Ordering::Relaxed);
                            count.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(count.load(Ordering::Relaxed), 1000);
            assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
        }

        #[test]
        fn bounded_blocks_then_drains() {
            let (tx, rx) = bounded::<u32>(2);
            let producer = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = rx.iter().collect();
            producer.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn send_fails_after_receivers_gone() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn recv_fails_after_senders_gone_and_empty() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }

    #[cfg(all(test, feature = "pcr-debug-sync"))]
    mod debug_sync_tests {
        use super::*;
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        #[test]
        fn tokens_count_deliveries_in_order() {
            let (tx, rx) = unbounded::<u32>();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            assert_eq!(rx.delivered(), 0);
            for i in 0..10 {
                assert_eq!(rx.recv(), Ok(i));
            }
            assert_eq!(rx.delivered(), 10);
        }

        #[test]
        fn try_recv_also_consumes_stamps() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.delivered(), 2);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn mpmc_contention_never_trips_the_fifo_assertion() {
            // 4 producers, 4 consumers, bounded channel: the FIFO stamp
            // check in recv() runs on every pop; completing without a
            // panic and with delivered == sent is the assertion.
            let (tx, rx) = bounded::<usize>(8);
            let produced = 4 * 500;
            let producers: Vec<_> = (0..4)
                .map(|p| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        for i in 0..500 {
                            tx.send(p * 500 + i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let count = Arc::new(AtomicUsize::new(0));
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    let count = Arc::clone(&count);
                    std::thread::spawn(move || {
                        while rx.recv().is_ok() {
                            count.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for h in producers {
                h.join().unwrap();
            }
            for h in consumers {
                h.join().unwrap();
            }
            assert_eq!(count.load(Ordering::Relaxed), produced);
            assert_eq!(rx.delivered(), produced as u64);
        }
    }
}
