//! Offline stand-in for the subset of `criterion` used by this workspace's
//! benches (the build environment has no network access to crates.io).
//!
//! Implements a small but real measurement harness: each benchmark is
//! warmed up, then timed over `sample_size` samples, and the median
//! per-iteration time (plus throughput, when configured) is printed. The
//! statistical machinery of real criterion (outlier analysis, regression,
//! HTML reports) is intentionally absent.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(name: S, param: P) -> Self {
        BenchmarkId { name: name.into(), param: param.to_string() }
    }

    /// Creates an id from a parameter value only.
    pub fn from_parameter<P: Display>(param: P) -> Self {
        BenchmarkId { name: String::new(), param: param.to_string() }
    }

    fn label(&self) -> String {
        if self.name.is_empty() {
            self.param.clone()
        } else {
            format!("{}/{}", self.name, self.param)
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    /// Times `routine`, recording `sample_count` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup + calibration: find an iteration count that takes ~1ms.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` on inputs built per-sample by `setup` (batched form).
    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        self.iters_per_sample = 1;
        self.samples.clear();
        for _ in 0..self.sample_count {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }

    fn median_nanos(&mut self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.sort_unstable();
        let mid = self.samples.len() / 2;
        self.samples[mid].as_nanos() as f64 / self.iters_per_sample as f64
    }
}

/// Batch size hint for [`Bencher::iter_batched`] (ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs.
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// Per-iteration inputs.
    PerIteration,
}

fn human_time(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

fn human_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        sample_count: sample_size.max(2),
    };
    f(&mut bencher);
    let nanos = bencher.median_nanos();
    let mut line = format!("{label:<50} median {:>12}", human_time(nanos));
    if nanos > 0.0 {
        if let Some(tp) = throughput {
            let (n, unit) = match tp {
                Throughput::Bytes(b) => (b as f64, "B"),
                Throughput::Elements(e) => (e as f64, "elem"),
            };
            let per_sec = n / (nanos / 1e9);
            line.push_str(&format!("  {:>14}", human_rate(per_sec, unit)));
        }
    }
    println!("{line}");
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the target measurement time (accepted, ignored by the shim).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, self.throughput, f);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.label()),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark manager.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Applies command-line configuration (no-op in the shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the default number of samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = self.effective_sample_size();
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let n = self.effective_sample_size();
        run_one(id, n, None, f);
        self
    }

    /// Runs one parameterized benchmark outside any group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let n = self.effective_sample_size();
        run_one(&id.label(), n, None, |b| f(b, input));
        self
    }

    /// Prints the final summary (no-op in the shim).
    pub fn final_summary(&mut self) {}

    fn effective_sample_size(&self) -> usize {
        if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; `cargo test --benches` passes
            // test-harness flags. Run measurements only under `cargo bench`
            // (or bare invocation) so test runs stay fast and deterministic.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &x| {
            b.iter(|| x * x)
        });
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("f", 3).label(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(9).label(), "9");
    }
}
